"""Zone-map synopses: per-block min/max sidecars that let scans skip I/O.

Every :class:`~repro.storage.colfile.ColumnFile` and rowstore heap written
through :class:`~repro.storage.heapfile.HeapFile` gets a sidecar file named
``<data file>.zm`` holding, per block (column files) or per page (heaps),
the minimum and maximum stored value — plus, for low-cardinality integer
blocks, a small exact distinct-value set.  These are the "small
materialized aggregates" / zone maps of the columnar-storage literature:
a scan consults them *before* asking the buffer pool for pages, so blocks
whose value range cannot satisfy the predicate cost zero simulated I/O and
zero numpy work.

Design rules, in order of importance:

* **Never wrong, only slower.**  A synopsis is an accelerator, not an
  authority.  If the sidecar is missing, fails its CRC, or describes a
  value domain the predicate does not match, the loader returns ``None``
  (with a :class:`SynopsisWarning` on corruption) and the caller falls
  back to scanning every block.
* **CRC-protected like pages.**  Sidecars are ordinary disk files: each
  page carries a write-time CRC32 in the disk's out-of-band checksum map,
  the fault injector can corrupt them (glob ``*.zm``), and the scrubber
  audits and rebuilds them deterministically from the data pages.
* **Charge-free consultation, visible in the ledger.**  Reading a sidecar
  is modeled as a metadata lookup (the decoded synopsis is cached on the
  owning file object, keyed by the sidecar's page CRCs), so it charges no
  ``pages_read``/``bytes_read``.  What *is* charged: one
  ``synopsis_probes`` tick per block examined (priced by
  ``CostModel.synopsis_probe_seconds``), plus a bookkeeping-only
  ``blocks_skipped`` count — so zone maps can never make the on-mode read
  more pages than the off-mode.
"""

from __future__ import annotations

import struct
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .plan.logical import CompareOp, Comparison, InSet, RangePredicate
from .simio.disk import PAGE_SIZE, page_checksum

#: Sidecar file suffix: ``lineorder.max.0.quantity`` → ``....quantity.zm``.
SIDECAR_SUFFIX = ".zm"

_MAGIC = b"RZM1"
_KIND_COLUMN = 0
_KIND_HEAP = 1
_VK_INT = 0
_VK_BYTES = 1
#: Keep an exact distinct set only when a block has at most this many
#: distinct values (dictionary/RLE-friendly columns); beyond that the
#: min/max pair is the whole synopsis.
MAX_DISTINCT = 16
_NO_DISTINCT = 0xFFFF

#: files with fewer blocks than this get no sidecar — skipping at most
#: one block can never repay a whole extra page of storage
MIN_SIDECAR_BLOCKS = 2


class SynopsisWarning(UserWarning):
    """A synopsis could not be used (corrupt or undecodable); the scan
    falls back to reading every block.  Results are unaffected."""


def sidecar_name(data_name: str) -> str:
    """Sidecar file name for a data file."""
    return data_name + SIDECAR_SUFFIX


def is_sidecar(name: str) -> bool:
    return name.endswith(SIDECAR_SUFFIX)


# ---------------------------------------------------------------------- #
# builders (write side)
# ---------------------------------------------------------------------- #
class ColumnSynopsisBuilder:
    """Accumulates per-block min/max (+ small distinct sets) for one
    column file, in block order, then serializes to a sidecar blob.

    The builder sees the same decoded value chunks the writer frames into
    pages, so rebuilding from the data pages (the scrubber does this)
    reproduces the blob byte for byte.
    """

    def __init__(self) -> None:
        self._mins: List = []
        self._maxs: List = []
        self._distincts: List[Optional[np.ndarray]] = []
        self._value_kind: Optional[int] = None
        self._width = 0

    @property
    def num_blocks(self) -> int:
        return len(self._mins)

    def add_block(self, chunk: np.ndarray) -> None:
        """Record one block's values (a non-empty 1-D array)."""
        if chunk.dtype.kind in "iu":
            kind, width = _VK_INT, 0
            lo, hi = int(chunk.min()), int(chunk.max())
            uniq = np.unique(chunk)
            distinct = (uniq.astype(np.int64) if len(uniq) <= MAX_DISTINCT
                        else None)
        elif chunk.dtype.kind == "S":
            kind, width = _VK_BYTES, chunk.dtype.itemsize
            values = chunk.tolist()  # trailing NULs stripped, like numpy
            lo, hi = min(values), max(values)
            distinct = None
        else:
            raise TypeError(f"unsupported synopsis dtype {chunk.dtype!r}")
        if self._value_kind is None:
            self._value_kind, self._width = kind, width
        elif (kind, width) != (self._value_kind, self._width):
            raise TypeError("mixed value kinds in one column synopsis")
        self._mins.append(lo)
        self._maxs.append(hi)
        self._distincts.append(distinct)

    def blob(self) -> bytes:
        """Serialize to the deterministic ``RZM1`` column format."""
        vk, width, n = self._value_kind, self._width, self.num_blocks
        parts = [_MAGIC, bytes([_KIND_COLUMN, vk]),
                 struct.pack("<HI", width, n)]
        if vk == _VK_INT:
            parts.append(np.asarray(self._mins, np.int64).tobytes())
            parts.append(np.asarray(self._maxs, np.int64).tobytes())
            for distinct in self._distincts:
                if distinct is None:
                    parts.append(struct.pack("<H", _NO_DISTINCT))
                else:
                    parts.append(struct.pack("<H", len(distinct)))
                    parts.append(distinct.tobytes())
        else:
            parts.append(np.asarray(self._mins, f"S{width}").tobytes())
            parts.append(np.asarray(self._maxs, f"S{width}").tobytes())
        return b"".join(parts)

    def write(self, disk, data_name: str) -> None:
        """Persist the sidecar next to ``data_name``.

        Single-block files get no sidecar: a zone map that can at best
        skip one block is not worth its own 32 KB page, and most small
        dimension/compressed files are exactly one block — without this
        gate the synopsis layer would nearly double their footprint.
        """
        if self.num_blocks >= MIN_SIDECAR_BLOCKS:
            write_sidecar(disk, sidecar_name(data_name), self.blob())


def heap_synopsis_blob(records: np.ndarray,
                       rows_per_page: int) -> Optional[bytes]:
    """Per-page min/max over every data field of a heap's record array
    (``None`` for an empty or single-page heap — see
    :data:`MIN_SIDECAR_BLOCKS`).  Fields of void kind — the record
    header — carry no queryable values and are skipped."""
    total = len(records)
    if total == 0:
        return None
    names = [name for name in records.dtype.names
             if records.dtype[name].kind != "V"]
    num_pages = -(-total // rows_per_page)
    if num_pages < MIN_SIDECAR_BLOCKS:
        return None
    parts = [_MAGIC, bytes([_KIND_HEAP, 0]),
             struct.pack("<IH", num_pages, len(names))]
    for name in names:
        column = records[name]
        kind = _VK_INT if column.dtype.kind in "iu" else _VK_BYTES
        width = 0 if kind == _VK_INT else column.dtype.itemsize
        encoded = name.encode("ascii")
        parts.append(struct.pack("<H", len(encoded)) + encoded
                     + bytes([kind]) + struct.pack("<H", width))
        mins: List = []
        maxs: List = []
        for start in range(0, total, rows_per_page):
            chunk = column[start:start + rows_per_page]
            if kind == _VK_INT:
                mins.append(int(chunk.min()))
                maxs.append(int(chunk.max()))
            else:
                values = chunk.tolist()
                mins.append(min(values))
                maxs.append(max(values))
        if kind == _VK_INT:
            parts.append(np.asarray(mins, np.int64).tobytes())
            parts.append(np.asarray(maxs, np.int64).tobytes())
        else:
            parts.append(np.asarray(mins, f"S{width}").tobytes())
            parts.append(np.asarray(maxs, f"S{width}").tobytes())
    return b"".join(parts)


def write_sidecar(disk, name: str, blob: bytes) -> None:
    """Write a synopsis blob as an ordinary CRC-mapped disk file."""
    disk.create(name)
    for offset in range(0, len(blob), PAGE_SIZE):
        disk.append_page(name, blob[offset:offset + PAGE_SIZE])


# ---------------------------------------------------------------------- #
# write-epoch stamps
# ---------------------------------------------------------------------- #
#: trailing write-epoch stamp: magic + little-endian uint64 epoch.  The
#: decoders above parse by offset from the front, so the trailer is
#: invisible to them; only the scrubber and the tuple mover look at it.
_STAMP_MAGIC = b"RZME"
_STAMP_BYTES = 12


def stamp_blob(blob: bytes, epoch: int) -> bytes:
    """Append the write-epoch trailer.  Epoch 0 is a no-op so sidecars
    of a never-written store stay byte-identical to builds that predate
    the write path."""
    if epoch <= 0:
        return blob
    return blob + _STAMP_MAGIC + struct.pack("<Q", epoch)


def split_stamp(blob: bytes) -> Tuple[bytes, int]:
    """``(payload without trailer, stamped epoch)`` — epoch 0 when the
    blob carries no trailer."""
    if len(blob) >= _STAMP_BYTES and blob[-_STAMP_BYTES:-8] == _STAMP_MAGIC:
        (epoch,) = struct.unpack("<Q", blob[-8:])
        return blob[:-_STAMP_BYTES], epoch
    return blob, 0


def stamp_sidecars(disk, epoch: int) -> None:
    """Rewrite every sidecar on ``disk`` carrying ``epoch``'s trailer.

    The tuple mover calls this on the shadow disk after a rebuild, so
    the scrubber can tell a sidecar that is *behind a pending delta*
    (stamp older than the store's write epoch) from one that silently
    drifted from its data pages.  Rewrites go through the ordinary page
    path, so the I/O is priced on whatever ledger the disk carries.
    """
    if epoch <= 0:
        return
    for name in disk.files():
        if not is_sidecar(name):
            continue
        payload, _old = split_stamp(b"".join(disk.file(name).pages))
        disk.drop(name)
        write_sidecar(disk, name, stamp_blob(payload, epoch))


def sidecar_epoch(disk, name: str) -> int:
    """The write-epoch stamp of one sidecar file (0 when unstamped)."""
    _payload, epoch = split_stamp(b"".join(disk.file(name).pages))
    return epoch


# ---------------------------------------------------------------------- #
# decoded forms (read side)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ColumnSynopsis:
    """Decoded zone maps for one column file: arrays indexed by block."""

    value_kind: int
    mins: np.ndarray
    maxs: np.ndarray
    #: per-block exact distinct sets (``None`` where cardinality > limit)
    distincts: Tuple[Optional[np.ndarray], ...]


@dataclass(frozen=True)
class _HeapColumn:
    value_kind: int
    mins: np.ndarray
    maxs: np.ndarray


@dataclass(frozen=True)
class HeapSynopsis:
    """Decoded zone maps for one heap file: per-page bounds per column."""

    num_pages: int
    columns: Dict[str, _HeapColumn]


def _decode_column_blob(blob: bytes) -> ColumnSynopsis:
    if blob[:4] != _MAGIC or blob[4] != _KIND_COLUMN:
        raise ValueError("not a column synopsis blob")
    vk = blob[5]
    width, n = struct.unpack_from("<HI", blob, 6)
    offset = 12
    if vk == _VK_INT:
        mins = np.frombuffer(blob, np.int64, n, offset)
        offset += 8 * n
        maxs = np.frombuffer(blob, np.int64, n, offset)
        offset += 8 * n
        distincts: List[Optional[np.ndarray]] = []
        for _ in range(n):
            (count,) = struct.unpack_from("<H", blob, offset)
            offset += 2
            if count == _NO_DISTINCT:
                distincts.append(None)
            else:
                distincts.append(np.frombuffer(blob, np.int64, count, offset))
                offset += 8 * count
    else:
        mins = np.frombuffer(blob, f"S{width}", n, offset)
        offset += width * n
        maxs = np.frombuffer(blob, f"S{width}", n, offset)
        distincts = [None] * n
    return ColumnSynopsis(vk, mins, maxs, tuple(distincts))


def _decode_heap_blob(blob: bytes) -> HeapSynopsis:
    if blob[:4] != _MAGIC or blob[4] != _KIND_HEAP:
        raise ValueError("not a heap synopsis blob")
    num_pages, num_columns = struct.unpack_from("<IH", blob, 6)
    offset = 12
    columns: Dict[str, _HeapColumn] = {}
    for _ in range(num_columns):
        (name_len,) = struct.unpack_from("<H", blob, offset)
        offset += 2
        name = blob[offset:offset + name_len].decode("ascii")
        offset += name_len
        kind = blob[offset]
        (width,) = struct.unpack_from("<H", blob, offset + 1)
        offset += 3
        dtype = np.dtype(np.int64) if kind == _VK_INT else np.dtype(f"S{width}")
        mins = np.frombuffer(blob, dtype, num_pages, offset)
        offset += dtype.itemsize * num_pages
        maxs = np.frombuffer(blob, dtype, num_pages, offset)
        offset += dtype.itemsize * num_pages
        columns[name] = _HeapColumn(kind, mins, maxs)
    return HeapSynopsis(num_pages, columns)


def _read_verified_blob(disk, name: str):
    """Return ``(cache_key, blob-or-None)`` for a sidecar file.

    The key is the tuple of *computed* CRCs over the stored page images,
    so any mutation of the sidecar — corruption or rebuild — changes the
    key and invalidates cached decodes.  A page whose computed CRC
    disagrees with the write-time map yields ``blob=None`` after a
    :class:`SynopsisWarning`.
    """
    f = disk.file(name)
    computed = tuple(page_checksum(payload) for payload in f.pages)
    for page_no, crc in enumerate(computed):
        if crc != disk.expected_checksum(name, page_no) \
                or disk.is_quarantined(name, page_no):
            warnings.warn(SynopsisWarning(
                f"synopsis {name!r} page {page_no} fails verification; "
                "scans fall back to reading every block"), stacklevel=4)
            return computed, None
    return computed, b"".join(f.pages)


def _load(owner, disk, data_name: str, decoder):
    name = sidecar_name(data_name)
    if not disk.exists(name):
        return None
    key, blob = _read_verified_blob(disk, name)
    cached = getattr(owner, "_zm_cache", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    synopsis = None
    if blob is not None:
        try:
            synopsis = decoder(blob)
        except Exception:
            warnings.warn(SynopsisWarning(
                f"synopsis {name!r} is undecodable; scans fall back to "
                "reading every block"), stacklevel=3)
    owner._zm_cache = (key, synopsis)
    return synopsis


def load_column_synopsis(colfile) -> Optional[ColumnSynopsis]:
    """Decoded sidecar for a :class:`ColumnFile`, or ``None`` (missing or
    corrupt — the caller scans every block).  Consultation is modeled as
    a metadata lookup: no I/O counters move; the decode is cached on the
    file object keyed by the sidecar's page CRCs."""
    return _load(colfile, colfile.disk, colfile.name, _decode_column_blob)


def load_heap_synopsis(heap) -> Optional[HeapSynopsis]:
    """Decoded sidecar for a :class:`HeapFile`, or ``None``."""
    return _load(heap, heap.disk, heap.name, _decode_heap_blob)


# ---------------------------------------------------------------------- #
# pruning (read side)
# ---------------------------------------------------------------------- #
def _compatible(synopsis_kind: int, sample) -> bool:
    if synopsis_kind == _VK_INT:
        return isinstance(sample, (int, np.integer))
    return isinstance(sample, (bytes, np.bytes_))


def prune_blocks(synopsis: ColumnSynopsis, first: int, last: int,
                 bounds: Optional[Tuple] = None,
                 needles: Optional[np.ndarray] = None
                 ) -> Optional[np.ndarray]:
    """Survivor mask over blocks ``first..last`` (inclusive), or ``None``
    when the synopsis cannot be applied (value-domain mismatch).

    ``bounds`` is an inclusive ``(lo, hi)`` range; ``needles`` a sorted
    array of sought values.  Exactly one must be given.  A ``True`` entry
    means the block *may* contain qualifying values and must be read.
    """
    mins = synopsis.mins[first:last + 1]
    maxs = synopsis.maxs[first:last + 1]
    if bounds is not None:
        lo, hi = bounds
        if not (_compatible(synopsis.value_kind, lo)
                and _compatible(synopsis.value_kind, hi)):
            return None
        mask = ~((maxs < lo) | (mins > hi))
    else:
        if len(needles) == 0:
            return np.zeros(last - first + 1, bool)
        if not _compatible(synopsis.value_kind, needles[0]):
            return None
        # smallest needle >= block min; the block overlaps the needle set
        # iff that needle also sits at or below the block max
        idx = np.searchsorted(needles, mins)
        clipped = np.minimum(idx, len(needles) - 1)
        mask = (idx < len(needles)) & (needles[clipped] <= maxs)
    # exact refinement where a block recorded its full distinct set
    for i in np.flatnonzero(mask):
        distinct = synopsis.distincts[first + i]
        if distinct is None:
            continue
        if bounds is not None:
            hit = bool(((distinct >= bounds[0])
                        & (distinct <= bounds[1])).any())
        else:
            left = np.searchsorted(needles, distinct)
            inside = np.minimum(left, len(needles) - 1)
            hit = bool(((left < len(needles))
                        & (needles[inside] == distinct)).any())
        if not hit:
            mask[i] = False
    return mask


def _encode_literal(kind: int, value):
    """Coerce a predicate literal into the synopsis value domain, or
    ``None`` when it cannot represent it."""
    if kind == _VK_INT:
        if isinstance(value, (int, np.integer)):
            return int(value)
        return None
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("ascii")
    return None


def _pred_page_mask(column: _HeapColumn, pred) -> Optional[np.ndarray]:
    mins, maxs = column.mins, column.maxs
    if isinstance(pred, Comparison):
        value = _encode_literal(column.value_kind, pred.value)
        if value is None:
            return None
        if pred.op is CompareOp.EQ:
            return (mins <= value) & (maxs >= value)
        if pred.op is CompareOp.LT:
            return mins < value
        if pred.op is CompareOp.LE:
            return mins <= value
        if pred.op is CompareOp.GT:
            return maxs > value
        if pred.op is CompareOp.GE:
            return maxs >= value
        return None
    if isinstance(pred, RangePredicate):
        lo = _encode_literal(column.value_kind, pred.low)
        hi = _encode_literal(column.value_kind, pred.high)
        if lo is None or hi is None:
            return None
        return ~((maxs < lo) | (mins > hi))
    if isinstance(pred, InSet):
        values = [_encode_literal(column.value_kind, v) for v in pred.values]
        if not values or any(v is None for v in values):
            return None
        needles = np.sort(np.asarray(values))
        idx = np.searchsorted(needles, mins)
        clipped = np.minimum(idx, len(needles) - 1)
        return (idx < len(needles)) & (needles[clipped] <= maxs)
    return None


def heap_page_mask(synopsis: HeapSynopsis,
                   predicates: Sequence) -> np.ndarray:
    """AND of per-predicate page masks; pages where every predicate may
    match.  Predicates the synopsis cannot evaluate prune nothing."""
    mask = np.ones(synopsis.num_pages, bool)
    for pred in predicates:
        column = synopsis.columns.get(pred.column)
        if column is None:
            continue
        pred_mask = _pred_page_mask(column, pred)
        if pred_mask is not None:
            mask &= pred_mask
    return mask


def mask_runs(mask: np.ndarray, base: int = 0) -> List[Tuple[int, int]]:
    """Surviving index runs as inclusive ``(first, last)`` pairs, offset
    by ``base`` — the unit of sequential I/O after pruning."""
    idx = np.flatnonzero(mask)
    if idx.size == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) > 1)
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [idx.size - 1]))
    return [(base + int(idx[s]), base + int(idx[e]))
            for s, e in zip(starts, ends)]


__all__ = [
    "SIDECAR_SUFFIX", "MAX_DISTINCT", "SynopsisWarning", "sidecar_name",
    "is_sidecar", "ColumnSynopsisBuilder", "heap_synopsis_blob",
    "write_sidecar", "ColumnSynopsis", "HeapSynopsis",
    "load_column_synopsis", "load_heap_synopsis", "prune_blocks",
    "heap_page_mask", "mask_runs",
    "stamp_blob", "split_stamp", "stamp_sidecars", "sidecar_epoch",
]
