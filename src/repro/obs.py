"""Per-phase query tracing: spans, ledger attribution, run artifacts.

The paper's argument is an *attribution* argument — Figure 7 only means
something because each factor (compression, invisible join, block
iteration, late materialization) can be charged separately.  This module
extends that discipline from per-query to per-phase: a :class:`Tracer`
opens named spans around each phase of a plan (``phase1:dimension-filter``,
``phase2:fact-scan``, ``phase3:extraction``, ``aggregate``, ``sort``, and
their row-store analogues), and each span captures the
:class:`~repro.simio.stats.QueryStats` counters accrued while it was open
plus a priced :class:`~repro.simio.stats.CostBreakdown`.

The result is a tree of (span -> counters -> simulated seconds) that sums
**exactly** to the flat per-query ledger — enforced by
:meth:`Trace.verify`, which both engines call on every execution.  Work
not covered by any named span (plan setup, result assembly glue) appears
as the root span's *self* ledger, so nothing is ever lost or double
counted.

Tracing is passive: spans only *snapshot* the live ledger at open/close,
so a traced run charges byte-for-byte the same flat ledger as an
untraced one, and the morsel-parallel path keeps PR 1's bit-identical
guarantee (worker leaves are recorded at the barrier, in morsel order).

The serve layer adds its own span vocabulary on top of the engines':
``admission-wait``, ``breaker-check``, ``cache-lookup``,
``cache-refilter``, ``cache-admit``, ``shared-scan``, plus zero-cost
marker leaves ``shed`` (a brownout rejection) and ``degraded-hit`` (a
cache answer served while the scope's circuit breaker was open).
Failed submissions finish their tracer too — the partial trace, still
:meth:`Trace.verify`-clean, rides on the raised exception as
``error.trace``.

Span trees surface in three places:

* ``EXPLAIN`` output of both engines (:func:`render_trace`);
* the ``--trace-json`` bench flag, which writes one JSON-lines record
  per query execution (:func:`trace_record`, schema in
  ``docs/observability.md``);
* ``python -m repro.bench <figure> --check-baseline ARTIFACT``, which
  diffs a fresh run against a committed artifact (see
  :mod:`repro.bench.baseline`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, Iterator, List, Optional

from .errors import TraceInvariantError
from .simio.stats import CostBreakdown, CostModel, PAPER_2008, QueryStats

#: Schema tag written into every ``--trace-json`` record.
TRACE_SCHEMA = "repro-trace-v1"


@dataclass
class Span:
    """One named phase of a query: its inclusive ledger, priced.

    ``stats`` covers everything that happened while the span was open,
    including descendant spans; :meth:`self_stats` subtracts the
    children to give the span's own (exclusive) ledger.
    """

    name: str
    stats: QueryStats
    cost: CostBreakdown
    children: List["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return self.cost.total_seconds

    def self_stats(self) -> QueryStats:
        """This span's counters minus all children's (exclusive ledger)."""
        out = QueryStats(**self.stats.snapshot())
        for child in self.children:
            for f in dataclass_fields(out):
                setattr(out, f.name,
                        getattr(out, f.name) - getattr(child.stats, f.name))
        return out

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict:
        """JSON-ready dict with a stable, documented key order:
        ``name``, ``total_seconds``, ``io_seconds``, ``cpu_seconds``,
        ``counters`` (nonzero only, sorted by name), ``children``."""
        return {
            "name": self.name,
            "total_seconds": self.cost.total_seconds,
            "io_seconds": self.cost.io_seconds,
            "cpu_seconds": self.cost.cpu_seconds,
            "counters": self.stats.nonzero(),
            "children": [c.to_dict() for c in self.children],
        }


@dataclass
class Trace:
    """A finished span tree for one query execution."""

    root: Span

    def verify(self, flat: QueryStats) -> "Trace":
        """Enforce the attribution invariant against the flat ledger.

        Counter for counter: the root's inclusive ledger must equal
        ``flat`` exactly, and no span's children may sum to more than the
        span itself (every exclusive ledger must be non-negative).
        Equivalently, the self ledgers of all spans sum exactly to the
        flat per-query ledger.  Raises :class:`TraceInvariantError` on
        any violation.
        """
        root_snapshot = self.root.stats.snapshot()
        flat_snapshot = flat.snapshot()
        if root_snapshot != flat_snapshot:
            deltas = {
                name: (root_snapshot[name], flat_snapshot[name])
                for name in flat_snapshot
                if root_snapshot.get(name) != flat_snapshot[name]
            }
            raise TraceInvariantError(
                f"trace root does not sum to the flat ledger; "
                f"(root, flat) mismatches: {deltas}"
            )
        for span in self.root.walk():
            for name, value in span.self_stats().snapshot().items():
                if value < 0:
                    raise TraceInvariantError(
                        f"span {span.name!r} is over-attributed: children "
                        f"charge {name} {-value} more than the span itself"
                    )
        return self

    def span_names(self) -> List[str]:
        return [span.name for span in self.root.walk()]

    def find(self, name: str) -> Optional[Span]:
        """First span with ``name`` in depth-first order, if any."""
        for span in self.root.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self) -> Dict:
        return self.root.to_dict()


class Tracer:
    """Opens spans over a live :class:`QueryStats` ledger.

    The tracer never charges anything: entering a span snapshots the
    ledger, exiting diffs against the snapshot, so the flat ledger is
    byte-identical with or without a tracer attached.  Spans follow
    stack discipline and must be opened/closed on the coordinating
    thread only — morsel workers charge private ledgers that the
    barrier merges (in morsel order) while the enclosing span is open,
    then records as leaf spans via :meth:`leaf`.
    """

    def __init__(self, stats: QueryStats,
                 cost_model: CostModel = PAPER_2008,
                 root_name: str = "query") -> None:
        self._live = stats
        self._model = cost_model
        #: (name, entry snapshot, collected children) per open span;
        #: slot 0 is the implicit root, open for the tracer's lifetime
        self._stack: List[tuple] = [(root_name, stats.snapshot(), [])]
        self._finished: Optional[Trace] = None

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Open a named span around a block of plan execution."""
        self._stack.append((name, self._live.snapshot(), []))
        try:
            yield
        finally:
            opened_name, snapshot, children = self._stack.pop()
            inclusive = self._live.diff(snapshot)
            self._attach(Span(opened_name, inclusive,
                              self._model.cost(inclusive), children))

    def leaf(self, name: str, stats: QueryStats) -> None:
        """Record a childless span from an already-computed ledger.

        Used by the morsel barrier: each worker's private ledger (plus
        its replayed I/O) becomes one leaf under the currently open
        span, appended in morsel order so traces are deterministic.
        """
        self._attach(Span(name, stats, self._model.cost(stats)))

    def _attach(self, span: Span) -> None:
        self._stack[-1][2].append(span)

    def attach_span(self, span: Span) -> None:
        """Adopt an already-finished span (tree) as a child of the
        currently open span.

        Used by the service layer: an engine execution builds and
        verifies its own trace against its own ledger; the service then
        merges that ledger into the session ledger and nests the
        engine's root span under the service span that was open around
        the call, so the combined tree still sums exactly to the
        combined flat ledger.
        """
        self._attach(span)

    def finish(self, flat: QueryStats) -> Trace:
        """Close the root span, verify against ``flat``, and return the
        trace.  Idempotent: later calls return the same trace."""
        if self._finished is not None:
            return self._finished
        if len(self._stack) != 1:
            open_names = [name for name, _s, _c in self._stack[1:]]
            raise TraceInvariantError(
                f"tracer finished with spans still open: {open_names}"
            )
        root_name, snapshot, children = self._stack[0]
        inclusive = self._live.diff(snapshot)
        root = Span(root_name, inclusive, self._model.cost(inclusive),
                    children)
        self._finished = Trace(root).verify(flat)
        return self._finished


def span_context(tracer: Optional[Tracer], name: str):
    """``tracer.span(name)``, or a no-op context when ``tracer`` is None
    — the single helper every instrumented operator goes through, so the
    untraced code paths stay exactly as they were."""
    if tracer is None:
        return _NULL_CONTEXT
    return tracer.span(name)


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


# ---------------------------------------------------------------------- #
# rendering and artifacts
# ---------------------------------------------------------------------- #
def render_trace(trace: Trace, indent: str = "  ") -> str:
    """The span tree as fixed-width EXPLAIN ANALYZE-style lines."""
    lines = [f"{indent}trace (simulated seconds):"]

    def emit(span: Span, depth: int) -> None:
        pad = indent + "  " * (depth + 1)
        label = f"{pad}{span.name}"
        lines.append(
            f"{label:<42} {span.cost.total_seconds:>10.5f}s "
            f"(io {span.cost.io_seconds:.5f}, "
            f"cpu {span.cost.cpu_seconds:.5f})"
        )
        for child in span.children:
            emit(child, depth + 1)

    emit(trace.root, 0)
    return "\n".join(lines)


def trace_record(trace: Trace, *, figure: str, series: str, query: str,
                 engine: str, scale_factor: float, workers: int) -> Dict:
    """One ``--trace-json`` JSON-lines record (stable key order; the
    schema is documented in ``docs/observability.md``)."""
    return {
        "schema": TRACE_SCHEMA,
        "figure": figure,
        "series": series,
        "query": query,
        "engine": engine,
        "scale_factor": scale_factor,
        "workers": workers,
        "total_seconds": trace.root.cost.total_seconds,
        "io_seconds": trace.root.cost.io_seconds,
        "cpu_seconds": trace.root.cost.cpu_seconds,
        "spans": trace.to_dict(),
    }


__all__ = ["Span", "Trace", "Tracer", "span_context", "render_trace",
           "trace_record", "TRACE_SCHEMA"]
