#!/usr/bin/env python3
"""EXPLAIN tour: how each engine plans the same star query.

Run:  python examples/explain_plans.py [query_name]

Prints the column store's invisible-join plan (with the between-predicate
rewrites it actually took), its hash-join fallback, its row-store-like
early-materialization plan, and the row store's five physical-design
plans — a side-by-side view of everything Sections 4-5 of the paper
describe.
"""

import sys

from repro import (
    CStore,
    DesignKind,
    SystemX,
    generate,
    query_by_name,
)
from repro.core.config import ExecutionConfig


def main() -> None:
    query_name = sys.argv[1] if len(sys.argv) > 1 else "Q3.1"
    query = query_by_name(query_name)
    print("Generating SSB data at scale factor 0.01 ...")
    data = generate(0.01)
    cstore = CStore(data)
    row_store = SystemX(data)

    print("\n" + "#" * 70)
    print("# COLUMN STORE")
    print("#" * 70)
    for config in (ExecutionConfig.baseline(),
                   ExecutionConfig.from_label("tiCL"),
                   ExecutionConfig.from_label("Ticl")):
        print()
        print(cstore.explain(query, config))

    print("\n" + "#" * 70)
    print("# ROW STORE")
    print("#" * 70)
    for design in DesignKind:
        print()
        try:
            print(row_store.explain(query, design))
        except Exception as error:  # MV only covers SSB flights
            print(f"EXPLAIN {query_name} [row store, {design.value}]: "
                  f"{error}")


if __name__ == "__main__":
    main()
