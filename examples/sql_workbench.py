#!/usr/bin/env python3
"""SQL workbench: run ad-hoc SSB-dialect SQL against both engines.

Run:  python examples/sql_workbench.py              # demo queries
      python examples/sql_workbench.py "SELECT ..." # your own SQL

Parses SQL through the repro frontend into the shared StarQuery IR,
executes it on the column store and the row store, cross-checks the
results, and prints the output with per-engine simulated costs.
"""

import sys

from repro import (
    CStore,
    DesignKind,
    SystemX,
    generate,
    parse_query,
    reference_execute,
)

DEMO_QUERIES = [
    # revenue by ship mode for large Christmas-season orders
    """
    SELECT lo.shipmode, sum(lo.revenue) AS revenue
    FROM lineorder AS lo, date AS d
    WHERE lo.orderdate = d.datekey
      AND d.sellingseason = 'Christmas'
      AND lo.quantity >= 40
    GROUP BY lo.shipmode
    ORDER BY revenue DESC
    """,
    # profit from European suppliers by year
    """
    SELECT d.year, sum(lo.revenue - lo.supplycost) AS profit
    FROM lineorder AS lo, supplier AS s, date AS d
    WHERE lo.suppkey = s.suppkey
      AND lo.orderdate = d.datekey
      AND s.region = 'EUROPE'
    GROUP BY d.year
    ORDER BY year
    """,
    # how much revenue rides on a single brand
    """
    SELECT p.brand1, sum(lo.revenue) AS revenue
    FROM lineorder AS lo, part AS p
    WHERE lo.partkey = p.partkey
      AND p.category = 'MFGR#31'
    GROUP BY p.brand1
    ORDER BY revenue DESC
    """,
]


def run_sql(sql: str, data, column_store, row_store) -> None:
    query = parse_query(sql, name="adhoc")
    print("SQL:")
    print("\n".join("  " + line.strip()
                    for line in sql.strip().splitlines()))
    col_run = column_store.execute(query)
    row_run = row_store.execute(query, DesignKind.TRADITIONAL)
    oracle = reference_execute(data.tables, query)
    assert col_run.result.same_rows(oracle)
    assert row_run.result.same_rows(oracle)
    print()
    print(col_run.result.pretty(limit=10))
    print(f"\n  column store: {col_run.seconds * 1000:7.2f} ms simulated")
    print(f"  row store:    {row_run.seconds * 1000:7.2f} ms simulated")
    print("=" * 68)


def main() -> None:
    print("Generating SSB data at scale factor 0.02 ...")
    data = generate(0.02)
    column_store = CStore(data)
    row_store = SystemX(data, designs=[DesignKind.TRADITIONAL])
    print("=" * 68)

    if len(sys.argv) > 1:
        run_sql(sys.argv[1], data, column_store, row_store)
        return
    for sql in DEMO_QUERIES:
        run_sql(sql, data, column_store, row_store)


if __name__ == "__main__":
    main()
