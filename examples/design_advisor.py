#!/usr/bin/env python3
"""Physical design advisor: which row-store design wins per query?

Run:  python examples/design_advisor.py [scale_factor]

The scenario from the paper's introduction: a DBA trying to make a
commercial row store behave like a column store.  Builds all five
physical designs (traditional, traditional+bitmap, materialized views,
vertical partitioning, index-only), runs the whole SSB workload under
each, and reports per-query winners, the storage bill, and how every
design compares to a real column store.
"""

import sys
from collections import Counter

from repro import CStore, DesignKind, SystemX, all_queries, generate

DESIGN_ORDER = [
    DesignKind.TRADITIONAL,
    DesignKind.TRADITIONAL_BITMAP,
    DesignKind.MATERIALIZED_VIEWS,
    DesignKind.VERTICAL_PARTITIONING,
    DesignKind.INDEX_ONLY,
]


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"Generating SSB data at scale factor {scale_factor} ...")
    data = generate(scale_factor)

    print("Building all five physical designs ...")
    engine = SystemX(data)
    print(f"  total simulated disk: {engine.storage_bytes() / 1e6:.0f} MB")
    column_store = CStore(data)

    queries = all_queries()
    times = {d: {} for d in DESIGN_ORDER}
    cs_times = {}
    for q in queries:
        for design in DESIGN_ORDER:
            times[design][q.name] = engine.execute(q, design).seconds
        cs_times[q.name] = column_store.execute(q).seconds

    labels = [d.value for d in DESIGN_ORDER]
    print(f"\n{'query':>6} " + " ".join(f"{l:>9}" for l in labels)
          + f" {'CS':>9}   winner (row designs only)")
    winners = Counter()
    for q in queries:
        row = [times[d][q.name] for d in DESIGN_ORDER]
        best = DESIGN_ORDER[row.index(min(row))]
        winners[best.value] += 1
        cells = " ".join(f"{v * 1000:8.1f}m" for v in row)
        print(f"{q.name:>6} {cells} {cs_times[q.name] * 1000:8.1f}m   "
              f"{best.value}")

    print("\nWins per design:", dict(winners))
    avg = {d.value: sum(t.values()) / len(t) for d, t in times.items()}
    cs_avg = sum(cs_times.values()) / len(cs_times)
    best_row = min(avg.values())
    print("Average simulated seconds per design:",
          {k: round(v, 4) for k, v in avg.items()})
    print(f"\nEven the best row-store design is "
          f"{best_row / cs_avg:.1f}x slower than the column store — the "
          f"paper's conclusion that emulating a column store in a row "
          f"store 'does not yield good performance results'.")


if __name__ == "__main__":
    main()
