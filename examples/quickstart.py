#!/usr/bin/env python3
"""Quickstart: generate SSB data, run one query on both engines.

Run:  python examples/quickstart.py [scale_factor]

Generates a small Star Schema Benchmark database, executes SSB query
Q3.1 (the paper's running example) on the row store and the column
store, verifies both against the reference engine, and prints the
results with each engine's simulated cost on the paper's 2008 hardware.
"""

import sys

from repro import (
    CStore,
    DesignKind,
    SystemX,
    generate,
    query_by_name,
    reference_execute,
)


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"Generating SSB data at scale factor {scale_factor} ...")
    data = generate(scale_factor)
    for name, table in data.tables.items():
        print(f"  {name:>10}: {table.num_rows:>9,} rows")

    query = query_by_name("Q3.1")
    print("\nQuery Q3.1: total revenue from Asian customers buying from "
          "Asian suppliers,\n1992-1997, grouped by nations and year.\n")

    print("Loading the row store (traditional design) ...")
    row_store = SystemX(data, designs=[DesignKind.TRADITIONAL])
    row_run = row_store.execute(query, DesignKind.TRADITIONAL)

    print("Loading the column store ...")
    column_store = CStore(data)
    col_run = column_store.execute(query)

    oracle = reference_execute(data.tables, query)
    assert row_run.result.same_rows(oracle), "row store deviates!"
    assert col_run.result.same_rows(oracle), "column store deviates!"
    print("Both engines match the reference oracle.\n")

    print(col_run.result.pretty(limit=8))

    print("\nSimulated cost on the paper's 2008 hardware:")
    for label, run in (("row store (RS)", row_run),
                       ("column store (CS)", col_run)):
        print(f"  {label:>18}: {run.seconds * 1000:8.2f} ms "
              f"(I/O {run.cost.io_seconds * 1000:.2f} ms, "
              f"CPU {run.cost.cpu_seconds * 1000:.2f} ms)")
    print(f"\n  column-store advantage: "
          f"{row_run.seconds / col_run.seconds:.1f}x "
          f"(the paper reports ~6x at SF 10)")


if __name__ == "__main__":
    main()
