#!/usr/bin/env python3
"""Denormalization study: is pre-joining worth it in a column store?

Run:  python examples/denormalization_study.py [scale_factor]

Reproduces the Figure 8 experiment interactively: builds the pre-joined
wide table, stores it at three compression levels, and compares each
against the invisible join on the normalized schema — ending with the
paper's surprising conclusion that denormalization is rarely useful in
a column store.
"""

import sys

from repro import CStore, all_queries, generate
from repro.core.config import ExecutionConfig
from repro.ssb.denormalize import denormalize, rewrite_query
from repro.ssb.schema import FACT_SORT_KEYS
from repro.storage.colfile import CompressionLevel

CASES = [
    ("PJ, No C", CompressionLevel.NONE,
     "strings stored at full CHAR width"),
    ("PJ, Int C", CompressionLevel.INT,
     "strings dictionary-encoded to int32"),
    ("PJ, Max C", CompressionLevel.MAX,
     "full per-block codec selection"),
]


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.02
    print(f"Generating SSB data at scale factor {scale_factor} ...")
    data = generate(scale_factor)
    store = CStore(data)

    print("Building the pre-joined wide table ...")
    wide = denormalize(data)
    print(f"  {wide.num_rows:,} rows x {len(wide.schema)} columns "
          f"({wide.uncompressed_bytes() / 1e6:.0f} MB raw)")
    for label, level, note in CASES:
        projection = store.load_table(wide, FACT_SORT_KEYS, level)
        print(f"  stored at {label:>10}: "
              f"{projection.size_bytes() / 1e6:7.1f} MB on disk "
              f"({note})")

    config = ExecutionConfig.baseline()
    queries = all_queries()
    base = {q.name: store.execute(q, config).seconds for q in queries}

    print(f"\n{'query':>6} {'invisible':>10} "
          + " ".join(f"{label:>10}" for label, _l, _n in CASES))
    totals = {label: 0.0 for label, _l, _n in CASES}
    for q in queries:
        cells = []
        for label, level, _note in CASES:
            seconds = store.execute(rewrite_query(q), config,
                                    level=level).seconds
            totals[label] += seconds
            marker = "*" if seconds < base[q.name] else " "
            cells.append(f"{seconds * 1000:8.1f}m{marker}")
        print(f"{q.name:>6} {base[q.name] * 1000:8.1f}ms "
              + " ".join(cells))

    base_avg = sum(base.values()) / len(base)
    print(f"\n('*' marks cases where pre-joining beat the invisible join)")
    print(f"\nAverages: invisible join {base_avg * 1000:.1f} ms")
    for label, _level, _note in CASES:
        avg = totals[label] / len(queries)
        verdict = "wins" if avg < base_avg else "loses"
        print(f"          {label:>10} {avg * 1000:6.1f} ms "
              f"({avg / base_avg:.2f}x, {verdict})")
    print("\nThe paper's conclusion holds: the invisible join makes "
          "star joins cheap\nenough that denormalization only pays under "
          "maximum compression.")


if __name__ == "__main__":
    main()
