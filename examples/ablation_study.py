#!/usr/bin/env python3
"""Ablation study: strip C-Store's optimizations one by one (Figure 7).

Run:  python examples/ablation_study.py [query_name] [scale_factor]

Executes one SSB query under each of the paper's seven configurations
(tICL .. Ticl), printing simulated time, the I/O / CPU split, and the
work counters that explain each step of the ladder — which is exactly
how Section 6.3.2 of the paper attributes the column store's advantage
to compression, late materialization, block iteration, and the
invisible join.
"""

import sys

from repro import CStore, CONFIG_LADDER, generate, query_by_name

EXPLANATIONS = {
    "tICL": "full C-Store: all four optimizations on",
    "TICL": "tuple-at-a-time processing (block iteration off)",
    "tiCL": "invisible join off (late materialized hash join)",
    "TiCL": "block iteration and invisible join both off",
    "ticL": "compression also off (columns stored plain)",
    "TicL": "only late materialization remains",
    "Ticl": "everything off: the column store acts like a row store",
}


def main() -> None:
    query_name = sys.argv[1] if len(sys.argv) > 1 else "Q2.1"
    scale_factor = float(sys.argv[2]) if len(sys.argv) > 2 else 0.02
    query = query_by_name(query_name)

    print(f"Generating SSB data at scale factor {scale_factor} ...")
    data = generate(scale_factor)
    store = CStore(data)

    print(f"\n{query_name} under the seven configurations of Figure 7:\n")
    header = (f"{'config':>7} {'simulated':>11} {'I/O':>9} {'CPU':>9} "
              f"{'MB read':>8} {'probes':>9} {'runs':>8} {'decomp':>9} "
              f"{'tuples':>8}")
    print(header)
    print("-" * len(header))
    baseline = None
    for config in CONFIG_LADDER:
        run = store.execute(query, config)
        if baseline is None:
            baseline = run.seconds
        s = run.stats
        print(f"{config.label:>7} {run.seconds * 1000:9.2f}ms "
              f"{run.cost.io_seconds * 1000:7.2f}ms "
              f"{run.cost.cpu_seconds * 1000:7.2f}ms "
              f"{s.bytes_read / 1e6:8.2f} {s.hash_probes:9,} "
              f"{s.runs_processed:8,} {s.values_decompressed:9,} "
              f"{s.tuples_constructed:8,}"
              f"   ({run.seconds / baseline:4.1f}x)  "
              f"{EXPLANATIONS[config.label]}")

    print("\nReading the counters:")
    print("  * 'runs' > 0 only while compression is on: predicates are")
    print("    applied to RLE runs instead of individual values.")
    print("  * 'probes' jumps when the invisible join is disabled (i) —")
    print("    between-predicate rewriting is gone — and again under")
    print("    early materialization.")
    print("  * 'tuples' is nonzero only for ..l: early materialization")
    print("    constructs every tuple before filtering, the habit the")
    print("    paper shows costs about 3x.")


if __name__ == "__main__":
    main()
