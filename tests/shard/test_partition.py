"""Fact-table partitioning: range/hash assignment and shard synopses."""

import numpy as np
import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import PlanError
from repro.shard import FactShard, ShardScheme, ShardSynopsis, partition_data
from repro.ssb.generator import SsbData
from repro.ssb.queries import ALL_QUERIES
from repro.ssb.schema import FACT_SORT_KEYS

SHARDS = 4


@pytest.fixture(scope="module")
def range_shards(ssb_data):
    return partition_data(ssb_data, SHARDS)


@pytest.fixture(scope="module")
def hash_shards(ssb_data):
    return partition_data(ssb_data, SHARDS, ShardScheme.HASH)


# --------------------------------------------------------------------- #
# range partitioning
# --------------------------------------------------------------------- #
def test_range_covers_every_row_once(ssb_data, range_shards):
    assert sum(s.data.lineorder.num_rows for s in range_shards) == \
        ssb_data.lineorder.num_rows
    # contiguous slices in order: concatenating the shards' orderkeys
    # reproduces the original column exactly
    merged = np.concatenate(
        [s.data.lineorder.column("orderkey").data for s in range_shards])
    assert np.array_equal(merged, ssb_data.lineorder.column("orderkey").data)


def test_range_bounds_are_disjoint(range_shards):
    """Boundary snapping: equal orderdates never straddle two shards, so
    the per-shard intervals (the elimination input) are disjoint."""
    intervals = [s.synopsis.range_of("orderdate") for s in range_shards
                 if s.synopsis.num_rows]
    for (lo_a, hi_a), (lo_b, hi_b) in zip(intervals, intervals[1:]):
        assert lo_a <= hi_a
        assert hi_a < lo_b  # strictly: the run boundary was respected


def test_range_keeps_the_fact_sort_order(range_shards):
    for shard in range_shards:
        assert tuple(shard.data.lineorder.sort_order.keys) == FACT_SORT_KEYS


def test_range_requires_a_sorted_key(ssb_data):
    # reverse the fact rows: orderdate now descends, so range
    # partitioning must refuse rather than emit overlapping "ranges"
    fact = ssb_data.lineorder
    reversed_fact = fact.take(np.arange(fact.num_rows)[::-1])
    scrambled = SsbData(
        scale_factor=ssb_data.scale_factor, seed=ssb_data.seed,
        lineorder=reversed_fact, customer=ssb_data.customer,
        supplier=ssb_data.supplier, part=ssb_data.part, date=ssb_data.date)
    with pytest.raises(PlanError):
        partition_data(scrambled, 2)


def test_bad_shard_count_rejected(ssb_data):
    with pytest.raises(PlanError):
        partition_data(ssb_data, 0)


# --------------------------------------------------------------------- #
# hash partitioning
# --------------------------------------------------------------------- #
def test_hash_assignment_is_deterministic_and_total(ssb_data, hash_shards):
    assert sum(s.data.lineorder.num_rows for s in hash_shards) == \
        ssb_data.lineorder.num_rows
    for k, shard in enumerate(hash_shards):
        keys = shard.data.lineorder.column("orderkey").data.astype(np.int64)
        assert np.all(keys % SHARDS == k)
    again = partition_data(ssb_data, SHARDS, ShardScheme.HASH)
    for a, b in zip(hash_shards, again):
        assert np.array_equal(a.data.lineorder.column("orderkey").data,
                              b.data.lineorder.column("orderkey").data)


def test_hash_drops_the_sort_order(hash_shards):
    for shard in hash_shards:
        assert not shard.data.lineorder.sort_order


def test_hash_shards_overlap_on_orderdate(hash_shards):
    """Honest synopses: hash shards span the full date domain, so date
    elimination cannot fire against them."""
    intervals = [s.synopsis.range_of("orderdate") for s in hash_shards]
    assert max(lo for lo, _hi in intervals) <= \
        min(hi for _lo, hi in intervals)


# --------------------------------------------------------------------- #
# synopses
# --------------------------------------------------------------------- #
def test_synopsis_bounds_match_the_data(range_shards):
    for shard in range_shards:
        fact = shard.data.lineorder
        assert shard.synopsis.bounds  # integer columns exist
        for name, (lo, hi) in shard.synopsis.bounds.items():
            column = fact.column(name)
            assert column.dictionary is None
            assert lo == int(column.data.min())
            assert hi == int(column.data.max())


def test_synopsis_skips_dictionary_columns(range_shards):
    for shard in range_shards:
        for column in shard.data.lineorder.columns():
            if column.dictionary is not None:
                assert column.name not in shard.synopsis.bounds


def test_empty_synopsis_has_no_bounds():
    empty = ShardSynopsis(0, 0, {})
    assert empty.num_rows == 0
    with pytest.raises(KeyError):
        empty.range_of("orderdate")


# --------------------------------------------------------------------- #
# the single-shard degenerate case
# --------------------------------------------------------------------- #
def test_single_shard_is_the_whole_database(ssb_data):
    [only] = partition_data(ssb_data, 1)
    assert only.data.lineorder.num_rows == ssb_data.lineorder.num_rows
    assert only.data.date is ssb_data.date  # dimensions shared by reference


def test_single_shard_engine_is_byte_identical(ssb_data):
    """An engine over the one-shard slice performs exactly the work of an
    engine over the original database — same rows, same ledger."""
    [only] = partition_data(ssb_data, 1)
    base = CStore(ssb_data)
    solo = CStore(only.data)
    config = ExecutionConfig.baseline()
    for name in ("Q1.1", "Q2.1", "Q3.1", "Q4.1"):
        query = next(q for q in ALL_QUERIES if q.name == name)
        base_run = base.execute(query, config)
        solo_run = solo.execute(query, config)
        assert solo_run.result.rows == base_run.result.rows, name
        assert solo_run.stats.snapshot() == base_run.stats.snapshot(), name
