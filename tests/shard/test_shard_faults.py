"""Fault isolation across shards: a corrupt page in one shard either
fails typed or fails over inside that shard — it never poisons siblings
and never produces a silently wrong merged result."""

from dataclasses import replace

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import CorruptPageError
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.ssb.queries import ALL_QUERIES

SHARDS = 4
CONFIG = ExecutionConfig.baseline()
SHARDED = replace(CONFIG, shards=SHARDS)


def _query(name):
    return next(q for q in ALL_QUERIES if q.name == name)


def _quarantine_fact_column(disk, column):
    """Fence page 0 of every file of one fact column (all levels, so no
    redundant projection can cover it)."""
    victims = [name for name in disk.files()
               if name.startswith("lineorder.") and name.endswith(column)]
    assert victims
    for name in victims:
        disk.quarantine(name, 0)
    return victims


@pytest.fixture()
def store(ssb_data):
    # function-scoped: these tests fence pages, so the session engine
    # fixtures must not be used here
    return CStore(ssb_data)


def test_corrupt_shard_fails_typed_without_poisoning_siblings(store):
    q11, q12 = _query("Q1.1"), _query("Q1.2")
    clean_q12 = store.execute(q12, SHARDED).result.rows
    children = store.shard_children(SHARDS)
    # Q1.1 (year 1993) executes shard 0; Q1.2 (Jan 1994) does not
    _quarantine_fact_column(children[0][1].disk, ".quantity")
    with pytest.raises(CorruptPageError) as info:
        store.execute(q11, SHARDED)
    assert "quantity" in info.value.file
    # the sibling shards are untouched: a query the synopses route past
    # the damaged shard still runs, correctly
    run = store.execute(q12, SHARDED)
    assert 0 not in run.shard_report.executed
    assert run.result.rows == clean_q12


def test_shard_failover_via_redundant_projection(ssb_data, store):
    """Redundancy *inside* a shard works exactly as it does unsharded:
    the damaged projection's shard fails over, siblings never notice."""
    q11 = _query("Q1.1")
    clean = store.execute(q11, SHARDED).result.rows
    children = store.shard_children(SHARDS)
    victim = children[0][1]
    victim.add_projection("lineorder", ("partkey",))
    fenced = [name for name in victim.disk.files()
              if "orderdate_quantity_discount" in name
              and name.startswith("lineorder.")]
    assert fenced
    for name in fenced:
        victim.disk.quarantine(name, 0)
    run = store.execute(q11, SHARDED)
    assert run.result.rows == clean
    assert run.stats.recoveries > 0
    # the recovery is attributed to the damaged shard's span
    shard0 = next(s for s in run.trace.root.children
                  if s.name == "shard:0")
    assert shard0.stats.recoveries == run.stats.recoveries


def test_rowstore_shard_corruption_is_typed(ssb_data):
    engine = SystemX(ssb_data, designs=[DesignKind.TRADITIONAL],
                     shards=SHARDS)
    q11, q12 = _query("Q1.1"), _query("Q1.2")
    clean_q12 = engine.execute(q12, DesignKind.TRADITIONAL).result.rows
    children = engine.shard_children()
    # the row store has no redundant copies: corruption in an executed
    # shard must surface typed, never as a wrong merged row
    heap_files = [name for name in children[0][1].disk.files()
                  if name.startswith("heap.lineorder")
                  and not name.endswith(".zm")]
    assert heap_files
    for name in heap_files:
        children[0][1].disk.quarantine(name, 0)
    with pytest.raises(CorruptPageError):
        engine.execute(q11, DesignKind.TRADITIONAL)
    run = engine.execute(q12, DesignKind.TRADITIONAL)
    assert 0 not in run.shard_report.executed
    assert run.result.rows == clean_q12
