"""The scatter-gather contract: ``shards=N`` is row-identical to
``shards=1`` with an additive merged ledger and a verified span tree."""

from dataclasses import replace

import pytest

from repro.core.config import ExecutionConfig
from repro.errors import PlanError
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.simio.stats import QueryStats
from repro.sql import parse_query
from repro.ssb.queries import ALL_QUERIES

SHARDS = 4


@pytest.fixture(scope="module")
def sharded_rs(ssb_data):
    return SystemX(ssb_data, designs=[DesignKind.TRADITIONAL],
                   shards=SHARDS)


def _assert_merged_run(run, shards=SHARDS):
    """The trace/ledger half of the contract, on any sharded run."""
    shard_spans = [s for s in run.trace.root.children
                   if s.name.startswith("shard:")]
    assert [s.name for s in shard_spans] == \
        [f"shard:{k}" for k in range(shards)]
    assert run.trace.root.children[0].name == "shard-elimination"
    run.trace.verify(run.stats)  # raises TraceInvariantError on breach
    summed = QueryStats()
    for span in run.trace.root.children:
        summed.merge(span.stats)
    assert summed.snapshot() == run.stats.snapshot()
    report = run.shard_report
    assert sorted(report.executed + report.eliminated) == \
        list(range(shards))
    # eliminated shards must be charged nothing
    for k in report.eliminated:
        # children[0] is shard-elimination, shard:K sits at index k+1
        assert not run.trace.root.children[k + 1].stats.nonzero()


# --------------------------------------------------------------------- #
# row identity across the whole benchmark, both engines
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
@pytest.mark.parametrize("workers", (1, 4))
def test_colstore_rows_identical(cstore, query, workers):
    config = replace(ExecutionConfig.baseline(), workers=workers)
    base = cstore.execute(query, config)
    run = cstore.execute(query, replace(config, shards=SHARDS))
    assert run.result.rows == base.result.rows
    assert run.result.columns == base.result.columns
    _assert_merged_run(run)


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
def test_rowstore_rows_identical(system_x, sharded_rs, query):
    base = system_x.execute(query, DesignKind.TRADITIONAL)
    run = sharded_rs.execute(query, DesignKind.TRADITIONAL)
    assert run.result.rows == base.result.rows
    assert run.result.columns == base.result.columns
    _assert_merged_run(run)


# --------------------------------------------------------------------- #
# shard elimination
# --------------------------------------------------------------------- #
def test_selective_year_executes_a_strict_subset(cstore):
    """Q1.2 restricts one month — at four orderdate-range shards at most
    one can hold it, and the synopsis probes must be charged."""
    query = next(q for q in ALL_QUERIES if q.name == "Q1.2")
    run = cstore.execute(
        query, replace(ExecutionConfig.baseline(), shards=SHARDS))
    assert run.shard_report.eliminated
    assert len(run.shard_report.executed) < SHARDS
    assert run.stats.synopsis_probes > 0


def test_unselective_query_executes_every_shard(cstore):
    """Q2.1 has no date predicate: nothing justifies skipping a shard."""
    query = next(q for q in ALL_QUERIES if q.name == "Q2.1")
    run = cstore.execute(
        query, replace(ExecutionConfig.baseline(), shards=SHARDS))
    assert run.shard_report.executed == tuple(range(SHARDS))


def test_all_shards_eliminated_yields_the_empty_aggregate(cstore):
    """A predicate no shard can satisfy: zero I/O, still the exact
    row ``shards=1`` produces for an empty input."""
    sql = ("SELECT sum(lo.revenue) AS r, count(*) AS n "
           "FROM lineorder AS lo WHERE lo.quantity < 1")
    query = parse_query(sql)  # quantity >= 1 always
    base = cstore.execute(query, ExecutionConfig.baseline())
    run = cstore.execute(
        query, replace(ExecutionConfig.baseline(), shards=SHARDS))
    assert run.shard_report.executed == ()
    assert run.result.rows == base.result.rows
    assert run.stats.pages_read == 0
    _assert_merged_run(run)


# --------------------------------------------------------------------- #
# merge semantics beyond the SSB suite
# --------------------------------------------------------------------- #
ADHOC = (
    # AVG must be scattered as SUM+COUNT, never averaged per shard
    "SELECT avg(lo.revenue) AS a FROM lineorder AS lo",
    # scalar MIN/MAX with a selective filter: some shards come back empty
    # and their 0-normalized extremes must not win the merge
    "SELECT min(lo.revenue) AS lo_r, max(lo.revenue) AS hi_r, "
    "count(*) AS n FROM lineorder AS lo, date AS d "
    "WHERE lo.orderdate = d.datekey AND d.year = 1997",
    # grouped AVG alongside other aggregates
    "SELECT d.year, avg(lo.discount) AS a, sum(lo.revenue) AS s "
    "FROM lineorder AS lo, date AS d WHERE lo.orderdate = d.datekey "
    "GROUP BY d.year ORDER BY d.year",
    # grouped, no ORDER BY: the gather's canonical order must match the
    # single-stack engines' canonical order
    "SELECT d.year, count(*) AS n FROM lineorder AS lo, date AS d "
    "WHERE lo.orderdate = d.datekey GROUP BY d.year",
)


@pytest.mark.parametrize("sql", ADHOC)
def test_adhoc_merge_semantics(cstore, sql):
    query = parse_query(sql)
    base = cstore.execute(query, ExecutionConfig.baseline())
    run = cstore.execute(
        query, replace(ExecutionConfig.baseline(), shards=SHARDS))
    assert run.result.rows == base.result.rows
    _assert_merged_run(run)


# --------------------------------------------------------------------- #
# configuration plumbing
# --------------------------------------------------------------------- #
def test_config_rejects_bad_shard_count():
    with pytest.raises(PlanError):
        replace(ExecutionConfig.baseline(), shards=0)


def test_rowstore_ctor_rejects_bad_shard_count(ssb_data):
    with pytest.raises(PlanError):
        SystemX(ssb_data, designs=[DesignKind.TRADITIONAL], shards=0)


def test_shard_children_built_once(cstore):
    config = replace(ExecutionConfig.baseline(), shards=SHARDS)
    query = next(q for q in ALL_QUERIES if q.name == "Q1.1")
    cstore.execute(query, config)
    first = cstore.shard_children(SHARDS)
    cstore.execute(query, config)
    assert cstore.shard_children(SHARDS) is first


def test_added_design_propagates_to_shard_children(ssb_data):
    engine = SystemX(ssb_data, designs=[DesignKind.TRADITIONAL],
                     shards=SHARDS)
    query = next(q for q in ALL_QUERIES if q.name == "Q2.1")
    engine.execute(query, DesignKind.TRADITIONAL)  # builds the children
    engine.add_design(DesignKind.MATERIALIZED_VIEWS)
    run = engine.execute(query, DesignKind.MATERIALIZED_VIEWS)
    base = SystemX(ssb_data, designs=[DesignKind.MATERIALIZED_VIEWS]) \
        .execute(query, DesignKind.MATERIALIZED_VIEWS)
    assert run.result.rows == base.result.rows
