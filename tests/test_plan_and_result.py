"""StarQuery IR and ResultSet tests."""

import pytest

from repro.errors import PlanError
from repro.plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    Literal,
    OrderKey,
    StarQuery,
    expr_columns,
)
from repro.result import ResultSet
from repro.ssb import query_by_name


def _ref(t, c):
    return ColumnRef(t, c)


def test_star_query_validation():
    with pytest.raises(PlanError):
        StarQuery("q", "f", {}, (), (), ())  # no aggregates
    with pytest.raises(PlanError):
        StarQuery(
            "q", "f", {},
            (Comparison(_ref("ghost", "x"), CompareOp.EQ, 1),),
            (),
            (AggExpr("sum", _ref("f", "v"), "s"),),
        )


def test_star_query_accessors():
    q = query_by_name("Q3.1")
    assert q.fk_of("customer") == "custkey"
    assert q.key_of("customer") == "custkey"
    assert q.key_of("date") == "datekey"
    with pytest.raises(PlanError):
        q.fk_of("part")
    assert q.dimensions_used() == ["customer", "date", "supplier"]
    assert q.group_by_of("customer") == ["nation"]
    assert [p.column for p in q.fact_predicates()] == []
    assert q.has_group_by()


def test_fact_columns_needed():
    q = query_by_name("Q1.1")
    cols = q.fact_columns_needed()
    assert cols == ["discount", "quantity", "orderdate", "extendedprice"]


def test_expr_columns():
    expr = BinOp("*", _ref("f", "a"), BinOp("+", Literal(1), _ref("f", "b")))
    assert [r.column for r in expr_columns(expr)] == ["a", "b"]


def test_bad_binop_and_agg():
    with pytest.raises(PlanError):
        BinOp("/", Literal(1), Literal(2))
    with pytest.raises(PlanError):
        AggExpr("median", Literal(1), "m")


def test_compare_op_flip():
    assert CompareOp.LT.flip() is CompareOp.GT
    assert CompareOp.EQ.flip() is CompareOp.EQ
    assert CompareOp.GE.flip() is CompareOp.LE


# --------------------------------------------------------------------- #
# ResultSet
# --------------------------------------------------------------------- #
def test_result_same_rows_order_insensitive():
    a = ResultSet(["x"], [(1,), (2,)])
    b = ResultSet(["x"], [(2,), (1,)])
    assert a.same_rows(b)
    assert not a.same_rows(ResultSet(["x"], [(1,)]))


def test_result_order_by():
    r = ResultSet(["g", "v"], [("b", 1), ("a", 3), ("a", 2)])
    asc = r.order_by([OrderKey("g"), OrderKey("v")])
    assert asc.rows == [("a", 2), ("a", 3), ("b", 1)]
    desc = r.order_by([OrderKey("g"), OrderKey("v", ascending=False)])
    assert desc.rows == [("a", 3), ("a", 2), ("b", 1)]
    assert r.order_by([]).rows == r.rows


def test_result_column_values_and_pretty():
    r = ResultSet(["g", "v"], [("a", 1), ("b", 2)])
    assert r.column_values("v") == [1, 2]
    text = r.pretty()
    assert "g" in text and "b" in text
    many = ResultSet(["x"], [(i,) for i in range(50)])
    assert "more rows" in many.pretty(limit=5)


def test_result_mixed_type_sorting():
    r = ResultSet(["x"], [("s", ), (1, )])
    assert r.sorted_rows() == [(1,), ("s",)]
