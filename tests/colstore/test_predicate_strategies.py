"""Pipelined vs parallel predicate application (Section 5.4's two
strategies) and the binary-search / pipelining interplay."""

import dataclasses

import pytest

from repro.core.config import ExecutionConfig
from repro.reference import execute as ref_execute
from repro.ssb import all_queries, query_by_name

PIPELINED = ExecutionConfig.baseline()
PARALLEL = dataclasses.replace(PIPELINED, pipelined_predicates=False)


def test_parallel_application_is_correct(ssb_data, cstore):
    for q in all_queries():
        run = cstore.execute(q, PARALLEL)
        assert run.result.same_rows(ref_execute(ssb_data.tables, q)), q.name


def test_pipelining_reduces_io_on_selective_queries(cstore):
    # Q1.3's first predicate survives ~0.3% of positions; pipelining
    # restricts every later column scan to that range
    q = query_by_name("Q1.3")
    piped = cstore.execute(q, PIPELINED)
    parallel = cstore.execute(q, PARALLEL)
    assert piped.result.same_rows(parallel.result)
    assert piped.stats.bytes_read <= parallel.stats.bytes_read
    assert piped.seconds <= parallel.seconds


def test_parallel_application_still_intersects_correctly(cstore):
    # a query whose predicates individually select lots but jointly little
    q = query_by_name("Q3.3")
    piped = cstore.execute(q, PIPELINED)
    parallel = cstore.execute(q, PARALLEL)
    assert piped.result.same_rows(parallel.result)


def test_position_ops_charged_for_parallel_merge(cstore):
    q = query_by_name("Q2.1")
    parallel = cstore.execute(q, PARALLEL)
    assert parallel.stats.position_ops > 0
