"""Position list representations and intersection (+ properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.colstore.positions import (
    EMPTY,
    ArrayPositions,
    BitmapPositions,
    RangePositions,
    from_bitmap_maybe_range,
    intersect,
    intersect_all,
)
from repro.errors import ExecutionError
from repro.simio.stats import QueryStats


def _bm(offset, bits):
    return BitmapPositions(offset, np.asarray(bits, dtype=bool))


def _arr(*positions):
    return ArrayPositions(np.asarray(positions, dtype=np.int64))


def test_range_basics():
    r = RangePositions(5, 9)
    assert r.count == 4
    assert r.bounds() == (5, 9)
    assert r.to_array().tolist() == [5, 6, 7, 8]
    with pytest.raises(ExecutionError):
        RangePositions(3, 2)


def test_bitmap_basics():
    b = _bm(10, [0, 1, 1, 0, 1])
    assert b.count == 3
    assert b.bounds() == (11, 15)
    assert b.to_array().tolist() == [11, 12, 14]


def test_array_basics():
    a = _arr(1, 5, 9)
    assert a.count == 3
    assert a.bounds() == (1, 10)
    assert EMPTY.count == 0
    assert EMPTY.bounds() is None


def test_from_bitmap_collapses_contiguous():
    out = from_bitmap_maybe_range(100, np.array([0, 1, 1, 1, 0], dtype=bool))
    assert isinstance(out, RangePositions)
    assert (out.start, out.stop) == (101, 104)
    out2 = from_bitmap_maybe_range(0, np.array([1, 0, 1], dtype=bool))
    assert isinstance(out2, BitmapPositions)
    assert from_bitmap_maybe_range(0, np.zeros(4, dtype=bool)) is EMPTY


def test_intersect_range_range():
    s = QueryStats()
    out = intersect(RangePositions(0, 10), RangePositions(5, 20), s)
    assert isinstance(out, RangePositions)
    assert (out.start, out.stop) == (5, 10)
    assert intersect(RangePositions(0, 3), RangePositions(5, 8), s) is EMPTY


def test_intersect_bitmap_range():
    s = QueryStats()
    out = intersect(_bm(0, [1, 0, 1, 1, 0, 1]), RangePositions(2, 5), s)
    assert out.to_array().tolist() == [2, 3]


def test_intersect_bitmap_bitmap():
    s = QueryStats()
    out = intersect(_bm(0, [1, 1, 0, 1]), _bm(1, [1, 0, 1]), s)
    assert out.to_array().tolist() == [1, 3]
    assert s.position_ops > 0


def test_intersect_array_combinations():
    s = QueryStats()
    assert intersect(_arr(1, 3, 7), RangePositions(2, 8), s).to_array(
        ).tolist() == [3, 7]
    assert intersect(_arr(1, 3, 7), _bm(0, [0, 1, 0, 1, 0, 0, 0, 1]),
                     s).to_array().tolist() == [1, 3, 7]
    assert intersect(_arr(1, 3), _arr(3, 9), s).to_array().tolist() == [3]


def test_intersect_disjoint_bitmaps_empty():
    s = QueryStats()
    assert intersect(_bm(0, [1, 1]), _bm(10, [1, 1]), s) is EMPTY


def test_intersect_all_orders_cheapest_first():
    s = QueryStats()
    out = intersect_all(
        [RangePositions(0, 100), _arr(5, 50), _bm(0, [1] * 60)], s)
    assert out.to_array().tolist() == [5, 50]
    with pytest.raises(ExecutionError):
        intersect_all([], s)


@st.composite
def positions_strategy(draw):
    kind = draw(st.sampled_from(["range", "bitmap", "array"]))
    if kind == "range":
        start = draw(st.integers(0, 50))
        stop = start + draw(st.integers(0, 50))
        return RangePositions(start, stop)
    if kind == "bitmap":
        offset = draw(st.integers(0, 20))
        bits = draw(st.lists(st.booleans(), max_size=60))
        return BitmapPositions(offset, np.asarray(bits, dtype=bool))
    values = draw(st.sets(st.integers(0, 80), max_size=40))
    return ArrayPositions(np.asarray(sorted(values), dtype=np.int64))


@given(positions_strategy(), positions_strategy())
@settings(max_examples=200, deadline=None)
def test_property_intersect_equals_set_intersection(a, b):
    s = QueryStats()
    out = intersect(a, b, s)
    expected = sorted(set(a.to_array().tolist())
                      & set(b.to_array().tolist()))
    assert out.to_array().tolist() == expected


@given(positions_strategy())
@settings(max_examples=100, deadline=None)
def test_property_bounds_enclose_positions(p):
    bounds = p.bounds()
    arr = p.to_array()
    if len(arr) == 0:
        assert bounds is None or bounds[1] <= bounds[0] or True
    else:
        assert bounds is not None
        lo, hi = bounds
        assert lo == arr[0]
        assert hi == arr[-1] + 1
