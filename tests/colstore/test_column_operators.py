"""Column operator tests: predicate scans (incl. direct-on-RLE), probe
scans, fetch with block skipping, gathering, and aggregation."""

import numpy as np
import pytest

from repro.colstore.operators.aggregate import (
    eval_fact_expr,
    grouped_aggregate,
    scalar_aggregate,
)
from repro.colstore.operators.fetch import fetch_values, read_column
from repro.colstore.operators.join import (
    dimension_rows_for_keys,
    gather_attribute,
)
from repro.colstore.operators.scan import (
    predicate_positions,
    probe_positions,
    stored_bounds,
)
from repro.colstore.positions import ArrayPositions, RangePositions
from repro.core.config import ExecutionConfig
from repro.errors import ExecutionError
from repro.plan.logical import (
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    InSet,
    Literal,
    RangePredicate,
)
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats
from repro.storage.colfile import ColumnFile, CompressionLevel
from repro.storage.column import Column
from repro.types import int32

BLOCK = ExecutionConfig.baseline()
TUPLE = ExecutionConfig.from_label("TICL")
NO_COMP = ExecutionConfig.from_label("ticL")


def _colfile(values, level=CompressionLevel.MAX, name="c"):
    disk = SimulatedDisk(QueryStats())
    col = Column.from_ints("v", np.asarray(values, dtype=np.int32), int32())
    f = ColumnFile.load(disk, name, col, level)
    return f, BufferPool(disk, 8 * 1024 * 1024)


# --------------------------------------------------------------------- #
# predicate scans
# --------------------------------------------------------------------- #
def test_scan_bounds_basic():
    f, pool = _colfile(np.arange(10_000))
    out = predicate_positions(f, pool, (100, 199), BLOCK)
    assert isinstance(out, RangePositions)
    assert out.count == 100


def test_scan_inset():
    values = np.tile(np.arange(10), 1000)
    f, pool = _colfile(values)
    out = predicate_positions(f, pool, [3, 7], BLOCK)
    assert out.count == 2000


def test_scan_empty_domain():
    f, pool = _colfile(np.arange(100))
    assert predicate_positions(f, pool, (5, 2), BLOCK).count == 0
    assert predicate_positions(f, pool, [], BLOCK).count == 0


def test_scan_restrict_window_skips_blocks():
    f, pool = _colfile(np.arange(200_000), CompressionLevel.NONE)
    pool.stats.reset()
    out = predicate_positions(f, pool, (0, 10**9), BLOCK,
                              restrict=(100_000, 101_000))
    assert out.count == 1000
    assert pool.stats.pages_read < f.num_blocks // 2


def test_scan_direct_on_rle_charges_runs_not_values():
    values = np.repeat(np.arange(50), 2000)  # 100k values, 50 runs
    f, pool = _colfile(values, CompressionLevel.MAX)
    pool.stats.reset()
    out = predicate_positions(f, pool, (10, 19), BLOCK)
    assert out.count == 20_000
    assert pool.stats.runs_processed > 0
    assert pool.stats.values_scanned_vector == 0
    assert pool.stats.values_decompressed == 0


def test_scan_without_compression_touches_values():
    values = np.repeat(np.arange(50), 2000)
    f, pool = _colfile(values, CompressionLevel.NONE)
    pool.stats.reset()
    out = predicate_positions(f, pool, (10, 19), NO_COMP)
    assert out.count == 20_000
    assert pool.stats.values_scanned_vector >= len(values)
    assert pool.stats.runs_processed == 0


def test_scan_tuple_at_a_time_charges_scalar():
    f, pool = _colfile(np.arange(10_000), CompressionLevel.NONE)
    pool.stats.reset()
    predicate_positions(f, pool, (0, 100), TUPLE)
    assert pool.stats.values_scanned_scalar > 0
    assert pool.stats.values_scanned_vector == 0


def test_probe_positions():
    values = np.tile(np.arange(100), 100)
    f, pool = _colfile(values, CompressionLevel.NONE)
    pool.stats.reset()
    out = probe_positions(f, pool, np.array([5, 50]), NO_COMP)
    assert out.count == 200
    assert pool.stats.hash_probes == len(values)


def test_probe_on_rle_probes_runs():
    values = np.repeat(np.arange(10), 5000)
    f, pool = _colfile(values, CompressionLevel.MAX)
    pool.stats.reset()
    out = probe_positions(f, pool, np.array([3]), BLOCK)
    assert out.count == 5000
    assert pool.stats.hash_probes < 200  # per run, not per value


# --------------------------------------------------------------------- #
# stored_bounds
# --------------------------------------------------------------------- #
def test_stored_bounds_int():
    col = Column.from_ints("q", [1, 2, 3], int32())
    ref = ColumnRef("t", "q")
    assert stored_bounds(Comparison(ref, CompareOp.EQ, 2), col,
                         CompressionLevel.MAX) == (2, 2)
    lo, hi = stored_bounds(Comparison(ref, CompareOp.LT, 2), col,
                           CompressionLevel.MAX)
    assert hi == 1
    assert stored_bounds(RangePredicate(ref, 1, 2), col,
                         CompressionLevel.NONE) == (1, 2)


def test_stored_bounds_string_codes():
    col = Column.from_strings("s", ["aa", "bb", "cc"])
    ref = ColumnRef("t", "s")
    assert stored_bounds(Comparison(ref, CompareOp.EQ, "bb"), col,
                         CompressionLevel.MAX) == (1, 1)
    assert stored_bounds(InSet(ref, ("aa", "zz")), col,
                         CompressionLevel.MAX) == [0]


def test_stored_bounds_string_raw():
    col = Column.from_strings("s", ["aa", "bb", "cc"])
    ref = ColumnRef("t", "s")
    lo, hi = stored_bounds(Comparison(ref, CompareOp.EQ, "bb"), col,
                           CompressionLevel.NONE)
    assert (lo, hi) == (b"bb", b"bb")
    needles = stored_bounds(InSet(ref, ("aa", "zz")), col,
                            CompressionLevel.NONE)
    assert needles == [b"aa", b"zz"]
    lo, hi = stored_bounds(RangePredicate(ref, "aa", "bb"), col,
                           CompressionLevel.NONE)
    assert (lo, hi) == (b"aa", b"bb")


# --------------------------------------------------------------------- #
# fetch
# --------------------------------------------------------------------- #
def test_fetch_range():
    f, pool = _colfile(np.arange(50_000), CompressionLevel.NONE)
    out = fetch_values(f, pool, RangePositions(100, 110), BLOCK)
    assert out.tolist() == list(range(100, 110))


def test_fetch_sparse_skips_blocks():
    f, pool = _colfile(np.arange(200_000), CompressionLevel.NONE)
    pool.stats.reset()
    positions = ArrayPositions(np.array([0, 199_999], dtype=np.int64))
    out = fetch_values(f, pool, positions, BLOCK)
    assert out.tolist() == [0, 199_999]
    assert pool.stats.pages_read == 2


def test_fetch_from_rle():
    f, pool = _colfile(np.repeat(np.arange(5), 10_000), CompressionLevel.MAX)
    out = fetch_values(f, pool, ArrayPositions(
        np.array([0, 15_000, 49_999], dtype=np.int64)), BLOCK)
    assert out.tolist() == [0, 1, 4]


def test_read_column():
    f, pool = _colfile(np.arange(1000))
    assert np.array_equal(read_column(f, pool, BLOCK),
                          np.arange(1000, dtype=np.int32))


# --------------------------------------------------------------------- #
# dimension lookups
# --------------------------------------------------------------------- #
def test_dimension_rows_contiguous():
    stats = QueryStats()
    fk = np.array([1, 5, 3], dtype=np.int64)
    rows = dimension_rows_for_keys(fk, stats, BLOCK, contiguous_from=1)
    assert rows.tolist() == [0, 4, 2]
    assert stats.hash_probes == 0


def test_dimension_rows_lookup():
    stats = QueryStats()
    keys = np.array([10, 20, 30], dtype=np.int64)
    rows = dimension_rows_for_keys(np.array([30, 10]), stats, BLOCK,
                                   None, sorted_keys=keys)
    assert rows.tolist() == [2, 0]
    assert stats.hash_probes == 2


def test_dimension_rows_dangling_raises():
    stats = QueryStats()
    keys = np.array([10, 20], dtype=np.int64)
    with pytest.raises(ExecutionError):
        dimension_rows_for_keys(np.array([15]), stats, BLOCK, None,
                                sorted_keys=keys)


def test_gather_attribute_charges_out_of_order():
    stats = QueryStats()
    attrs = np.arange(100, dtype=np.int32)
    gather_attribute(attrs, np.array([5, 1]), stats, BLOCK,
                     out_of_order=True)
    assert stats.values_scanned_scalar == 2
    stats2 = QueryStats()
    gather_attribute(attrs, np.array([5, 1]), stats2, BLOCK,
                     out_of_order=False)
    assert stats2.values_scanned_vector == 2


# --------------------------------------------------------------------- #
# aggregation
# --------------------------------------------------------------------- #
def test_eval_fact_expr():
    stats = QueryStats()
    cols = {"a": np.array([1, 2], dtype=np.int32),
            "b": np.array([10, 20], dtype=np.int32)}
    expr = BinOp("*", ColumnRef("f", "a"), ColumnRef("f", "b"))
    assert eval_fact_expr(expr, cols, stats, BLOCK).tolist() == [10, 40]
    expr2 = BinOp("+", ColumnRef("f", "a"), Literal(100))
    assert eval_fact_expr(expr2, cols, stats, BLOCK).tolist() == [101, 102]
    expr3 = BinOp("-", ColumnRef("f", "b"), ColumnRef("f", "a"))
    assert eval_fact_expr(expr3, cols, stats, BLOCK).tolist() == [9, 18]
    with pytest.raises(ExecutionError):
        eval_fact_expr(ColumnRef("f", "missing"), cols, stats, BLOCK)


def test_eval_fact_expr_no_int32_overflow():
    stats = QueryStats()
    cols = {"a": np.array([2_000_000], dtype=np.int32)}
    expr = BinOp("*", ColumnRef("f", "a"), ColumnRef("f", "a"))
    assert eval_fact_expr(expr, cols, stats, BLOCK).tolist() == [
        4_000_000_000_000]


def test_scalar_aggregate():
    stats = QueryStats()
    sums = scalar_aggregate([np.array([1, 2, 3], dtype=np.int64)], stats,
                            BLOCK)
    assert sums == [6]


def test_grouped_aggregate():
    stats = QueryStats()
    groups = [np.array([1, 1, 2, 2]), np.array([0, 1, 0, 0])]
    values = [np.array([10, 20, 30, 40], dtype=np.int64)]
    uniq, reduced = grouped_aggregate(groups, values, stats, BLOCK)
    primary, secondary = reduced[0]
    assert secondary is None
    got = {(int(uniq[0, g]), int(uniq[1, g])): int(primary[g])
           for g in range(uniq.shape[1])}
    assert got == {(1, 0): 10, (1, 1): 20, (2, 0): 70}


def test_grouped_aggregate_min_max_avg():
    stats = QueryStats()
    groups = [np.array([1, 1, 2])]
    values = np.array([10, 20, 7], dtype=np.int64)
    uniq, reduced = grouped_aggregate(
        [groups[0]], [values, values, values], stats, BLOCK,
        funcs=["min", "max", "avg"])
    mins, maxs, avgs = reduced
    assert mins[0].tolist() == [10, 7]
    assert maxs[0].tolist() == [20, 7]
    assert avgs[0].tolist() == [30, 7]       # sums
    assert avgs[1].tolist() == [2, 1]        # counts


def test_grouped_aggregate_empty():
    stats = QueryStats()
    uniq, reduced = grouped_aggregate(
        [np.zeros(0, dtype=np.int64)], [np.zeros(0, dtype=np.int64)],
        stats, BLOCK)
    assert uniq.shape[1] == 0
    with pytest.raises(ExecutionError):
        grouped_aggregate([], [], stats, BLOCK)
