"""Query-driven projection selection (the C-Store redundancy the paper
forgoes in Section 5.1)."""

import numpy as np
import pytest

from repro.colstore.engine import CStore
from repro.reference import execute as ref_execute
from repro.ssb import all_queries, query_by_name
from repro.storage.colfile import CompressionLevel


@pytest.fixture(scope="module")
def redundant_store(ssb_data):
    store = CStore(ssb_data, levels=[CompressionLevel.MAX])
    store.add_projection("lineorder", ("custkey", "suppkey"))
    return store


def test_add_projection_registers_candidate(redundant_store):
    candidates = redundant_store._context().candidates(
        "lineorder", CompressionLevel.MAX)
    assert len(candidates) == 2
    assert candidates[0].sort_order.keys[0] == "orderdate"
    assert candidates[1].sort_order.keys == ("custkey", "suppkey")


def test_add_projection_idempotent(redundant_store):
    redundant_store.add_projection("lineorder", ("custkey", "suppkey"))
    assert len(redundant_store._context().candidates(
        "lineorder", CompressionLevel.MAX)) == 2


def test_selection_prefers_matching_sort_order(redundant_store):
    ctx = redundant_store._context()
    # Q3.1 restricts custkey (via customer) harder than orderdate
    q3 = query_by_name("Q3.1")
    chosen = ctx.best_projection("lineorder", CompressionLevel.MAX, q3)
    assert chosen.sort_order.keys[0] == "custkey"
    # flight 1 restricts orderdate/quantity/discount -> default projection
    q1 = query_by_name("Q1.1")
    chosen = ctx.best_projection("lineorder", CompressionLevel.MAX, q1)
    assert chosen.sort_order.keys[0] == "orderdate"


def test_results_identical_with_extra_projection(ssb_data, redundant_store):
    for q in all_queries():
        run = redundant_store.execute(q)
        assert run.result.same_rows(ref_execute(ssb_data.tables, q)), q.name


def test_extra_projection_speeds_up_customer_queries(ssb_data,
                                                     redundant_store):
    baseline = CStore(ssb_data, levels=[CompressionLevel.MAX])
    q = query_by_name("Q3.2")  # selective customer predicate
    with_extra = redundant_store.execute(q).seconds
    without = baseline.execute(q).seconds
    assert with_extra < without


def test_extra_projection_costs_storage(ssb_data, redundant_store):
    baseline = CStore(ssb_data, levels=[CompressionLevel.MAX])
    assert redundant_store.storage_bytes() > 1.5 * baseline.storage_bytes()
