"""The sorted_binary_search extension: correctness and I/O savings."""

import dataclasses

import numpy as np
import pytest

from repro.colstore.operators.scan import sorted_predicate_positions
from repro.core.config import ExecutionConfig
from repro.reference import execute as ref_execute
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats
from repro.ssb import all_queries, query_by_name
from repro.storage.colfile import ColumnFile, CompressionLevel
from repro.storage.column import Column
from repro.types import int32

BS = dataclasses.replace(ExecutionConfig.baseline(),
                         sorted_binary_search=True)
# invisible join on, compression off: the rewritten orderdate predicate
# is the one the binary search accelerates
BS_PLAIN = dataclasses.replace(ExecutionConfig.from_label("tIcL"),
                               sorted_binary_search=True)


def _sorted_colfile(values, level):
    disk = SimulatedDisk(QueryStats())
    col = Column.from_ints("v", np.sort(np.asarray(values,
                                                   dtype=np.int32)), int32())
    f = ColumnFile.load(disk, "c", col, level)
    return f, BufferPool(disk, 8 * 1024 * 1024), col.data


@pytest.mark.parametrize("level", [CompressionLevel.NONE,
                                   CompressionLevel.MAX])
@pytest.mark.parametrize("bounds", [(100, 5000), (0, 10**9), (-5, -1),
                                    (99_999, 99_999), (50_000, 50_000)])
def test_binary_search_matches_numpy(level, bounds):
    rng = np.random.default_rng(3)
    f, pool, data = _sorted_colfile(rng.integers(0, 100_000, 120_000), level)
    config = BS if level is CompressionLevel.MAX else BS_PLAIN
    out = sorted_predicate_positions(f, pool, bounds, config)
    lo, hi = bounds
    expected = np.flatnonzero((data >= lo) & (data <= hi))
    assert out.count == len(expected)
    if len(expected):
        assert out.to_array().tolist() == expected.tolist()


def test_binary_search_duplicates_spanning_blocks():
    values = np.concatenate([np.zeros(50_000, np.int64),
                             np.full(50_000, 7, np.int64),
                             np.full(50_000, 9, np.int64)])
    f, pool, data = _sorted_colfile(values, CompressionLevel.NONE)
    out = sorted_predicate_positions(f, pool, (7, 7), BS_PLAIN)
    assert out.count == 50_000
    assert out.to_array()[0] == 50_000


def test_binary_search_reads_fewer_pages():
    rng = np.random.default_rng(5)
    f, pool, _data = _sorted_colfile(rng.integers(0, 10**6, 400_000),
                                     CompressionLevel.NONE)
    pool.clear()
    pool.stats.reset()
    sorted_predicate_positions(f, pool, (500_000, 501_000), BS_PLAIN)
    assert pool.stats.pages_read < f.num_blocks // 3


def test_all_queries_correct_with_binary_search(ssb_data, cstore):
    for q in all_queries():
        run = cstore.execute(q, BS)
        assert run.result.same_rows(ref_execute(ssb_data.tables, q)), q.name


def test_binary_search_helps_uncompressed_flight1(cstore):
    q = query_by_name("Q1.1")
    plain = cstore.execute(q, ExecutionConfig.from_label("tIcL"))
    searched = cstore.execute(q, BS_PLAIN)
    assert searched.result.same_rows(plain.result)
    # orderdate is no longer scanned in full
    assert searched.stats.bytes_read < plain.stats.bytes_read
    assert searched.seconds < plain.seconds
