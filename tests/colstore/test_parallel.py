"""The morsel layer's contract: parallel execution changes nothing but
wall-clock.

The headline suite runs all 13 SSBM queries under all 7 ablation
configurations and demands that ``workers=4`` produce bit-identical
rows and an identical simulated I/O ledger (pages, bytes, seeks,
buffer hits, per-stripe-disk attribution) to ``workers=1``.  The rest
covers the pieces: block-aligned window geometry, position-list
split/reassembly, packed-key group factorization, and partial-
aggregate merging.
"""

import dataclasses

import numpy as np
import pytest

from repro.colstore.engine import CStore
from repro.colstore.operators.aggregate import (
    factorize_groups,
    grouped_aggregate,
    merge_group_reductions,
    merge_scalar_reductions,
    partial_scalar_aggregate,
    scalar_aggregate,
)
from repro.colstore.parallel import MorselEngine, TracePool, make_engine
from repro.colstore.positions import (
    ArrayPositions,
    BitmapPositions,
    RangePositions,
    concat_windows,
    slice_window,
)
from repro.core.config import CONFIG_LADDER, ExecutionConfig
from repro.simio.stats import QueryStats
from repro.ssb.queries import ALL_QUERIES

_IO_FIELDS = (
    "pages_read", "bytes_read", "seeks", "buffer_hits",
    "stripe0_bytes", "stripe1_bytes", "stripe2_bytes", "stripe3_bytes",
    "stripe0_seeks", "stripe1_seeks", "stripe2_seeks", "stripe3_seeks",
)

_LABELS = [c.label for c in CONFIG_LADDER]


# --------------------------------------------------------------------- #
# the contract: 13 queries x 7 configs, workers=4 == workers=1
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("label", _LABELS)
@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
def test_parallel_equivalence(cstore, query, label):
    serial = ExecutionConfig.from_label(label)
    parallel = dataclasses.replace(serial, workers=4)
    run1 = cstore.execute(query, serial)
    run4 = cstore.execute(query, parallel)
    assert run4.result.rows == run1.result.rows
    for field in _IO_FIELDS:
        assert getattr(run4.stats, field) == getattr(run1.stats, field), \
            f"{field} deviates under workers=4"


def test_small_morsels_still_equivalent(cstore):
    """An explicit tiny morsel size (many more morsels than workers)
    exercises window snapping without changing anything observable."""
    query = ALL_QUERIES[3]  # Q2.1: joins, group-by, fact fetches
    serial = cstore.execute(query, ExecutionConfig.baseline())
    tiny = dataclasses.replace(ExecutionConfig.baseline(), workers=3,
                               morsel_rows=1000)
    parallel = cstore.execute(query, tiny)
    assert parallel.result.rows == serial.result.rows
    for field in _IO_FIELDS:
        assert getattr(parallel.stats, field) == getattr(serial.stats, field)


def test_workers_share_one_pool_without_double_charging(cstore):
    """Morsel workers read through trace pools and replay once: total
    page charges equal the serial run's, so the shared pool is not
    double-charged for pages two workers both touched."""
    query = ALL_QUERIES[0]
    serial = cstore.execute(query, ExecutionConfig.baseline())
    parallel = cstore.execute(
        query, dataclasses.replace(ExecutionConfig.baseline(), workers=4))
    assert (parallel.stats.pages_read + parallel.stats.buffer_hits
            == serial.stats.pages_read + serial.stats.buffer_hits)


def test_simulated_seconds_identical_under_parallelism(cstore):
    """The cost model prices identical ledgers identically; only the
    per-morsel block_calls overhead may differ, and it must stay tiny."""
    query = ALL_QUERIES[5]
    serial = cstore.execute(query, ExecutionConfig.baseline())
    parallel = cstore.execute(
        query, dataclasses.replace(ExecutionConfig.baseline(), workers=4))
    assert parallel.cost.io_seconds == serial.cost.io_seconds
    # the only CPU drift allowed is the per-morsel block_call overhead
    # (1 us per extra morsel) — bounded at 1% of the query's CPU charge
    assert parallel.cost.cpu_seconds == pytest.approx(
        serial.cost.cpu_seconds, rel=1e-2)


# --------------------------------------------------------------------- #
# config knobs
# --------------------------------------------------------------------- #
def test_workers_knob_validation():
    from repro.errors import PlanError

    with pytest.raises(PlanError):
        ExecutionConfig(workers=0)
    with pytest.raises(PlanError):
        ExecutionConfig(morsel_rows=0)
    assert ExecutionConfig(workers=4).label == "tICL"  # label unchanged


def test_make_engine_none_when_serial(cstore):
    assert make_engine(cstore.pool, ExecutionConfig.baseline()) is None
    engine = make_engine(cstore.pool,
                         ExecutionConfig(workers=2))
    assert isinstance(engine, MorselEngine)
    engine.close()


# --------------------------------------------------------------------- #
# morsel geometry
# --------------------------------------------------------------------- #
def test_windows_are_block_aligned_and_cover(cstore):
    from repro.storage.colfile import CompressionLevel

    proj = cstore.projection("lineorder", CompressionLevel.MAX)
    colfile = proj.column_file("quantity")
    config = ExecutionConfig(workers=4)
    with MorselEngine(cstore.pool, config) as engine:
        windows = engine._windows(colfile, 0, colfile.num_values)
    assert windows[0][0] == 0
    assert windows[-1][1] == colfile.num_values
    starts = set(int(s) for s in colfile.block_starts)
    for (a_lo, a_hi), (b_lo, b_hi) in zip(windows, windows[1:]):
        assert a_hi == b_lo          # seamless
        assert b_lo in starts        # every cut is a block boundary


def test_trace_pool_records_without_charging(cstore):
    from repro.storage.colfile import CompressionLevel

    proj = cstore.projection("lineorder", CompressionLevel.MAX)
    colfile = proj.column_file("quantity")
    num = min(3, cstore.disk.file(colfile.name).num_pages)
    assert num >= 1
    before = cstore.pool.stats.snapshot()
    tp = TracePool(cstore.pool)
    payloads = list(tp.scan_pages(colfile.name, 0, num))
    assert len(payloads) == num
    assert tp.trace == [(colfile.name, i, 1) for i in range(num)]
    assert cstore.pool.stats.snapshot() == before  # nothing charged


# --------------------------------------------------------------------- #
# position-list split / reassembly
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("positions", [
    RangePositions(10, 500),
    ArrayPositions(np.array([3, 40, 41, 42, 300, 999], dtype=np.int64)),
    BitmapPositions(0, np.arange(1000) % 7 == 0),
], ids=["range", "array", "bitmap"])
def test_slice_concat_roundtrip(positions, stats=QueryStats()):
    cuts = [0, 128, 256, 640, 1000]
    parts = [slice_window(positions, lo, hi)
             for lo, hi in zip(cuts, cuts[1:])]
    merged = concat_windows(parts, 0, 1000)
    assert np.array_equal(merged.to_array(), positions.to_array())
    assert sum(p.count for p in parts) == positions.count


# --------------------------------------------------------------------- #
# packed-key factorization (satellite of the aggregation path)
# --------------------------------------------------------------------- #
def test_factorize_groups_matches_axis_unique():
    rng = np.random.default_rng(11)
    matrix = np.stack([
        rng.integers(1992, 1999, 5000).astype(np.int64),
        rng.integers(0, 25, 5000).astype(np.int64),
        rng.integers(-3, 40, 5000).astype(np.int64),  # negative codes too
    ])
    uniq, inverse = factorize_groups(matrix)
    ref_uniq, ref_inverse = np.unique(matrix, axis=1, return_inverse=True)
    assert np.array_equal(uniq, ref_uniq)
    assert np.array_equal(inverse, np.ravel(ref_inverse))


def test_factorize_groups_overflow_falls_back():
    big = np.array([[0, 2 ** 61], [0, 2 ** 61]], dtype=np.int64)
    uniq, inverse = factorize_groups(big)
    ref_uniq, ref_inverse = np.unique(big, axis=1, return_inverse=True)
    assert np.array_equal(uniq, ref_uniq)
    assert np.array_equal(inverse, np.ravel(ref_inverse))


def test_factorize_groups_empty_and_single_row():
    empty = np.zeros((2, 0), dtype=np.int64)
    uniq, inverse = factorize_groups(empty)
    assert uniq.shape == (2, 0) and len(inverse) == 0
    one = np.array([[5, 3, 5, 3]], dtype=np.int64)
    uniq, inverse = factorize_groups(one)
    assert np.array_equal(uniq, [[3, 5]])
    assert np.array_equal(inverse, [1, 0, 1, 0])


# --------------------------------------------------------------------- #
# partial-aggregate merging
# --------------------------------------------------------------------- #
def _split_grouped(group_arrays, agg_arrays, funcs, config, cuts):
    parts = []
    for lo, hi in zip(cuts, cuts[1:]):
        parts.append(grouped_aggregate(
            [g[lo:hi] for g in group_arrays],
            [a[lo:hi] for a in agg_arrays],
            QueryStats(), config, funcs))
    return merge_group_reductions(funcs, parts)


def test_merged_partials_match_single_pass():
    rng = np.random.default_rng(5)
    n = 4000
    group_arrays = [rng.integers(0, 9, n).astype(np.int64),
                    rng.integers(0, 5, n).astype(np.int64)]
    agg_arrays = [rng.integers(-100, 100, n).astype(np.int64),
                  rng.integers(0, 10, n).astype(np.int64),
                  rng.integers(0, 10 ** 6, n).astype(np.int64),
                  rng.integers(-50, 50, n).astype(np.int64),
                  np.zeros(n, dtype=np.int64)]
    funcs = ["sum", "min", "max", "avg", "count"]
    config = ExecutionConfig.baseline()
    whole = grouped_aggregate(group_arrays, agg_arrays, QueryStats(),
                              config, funcs)
    merged = _split_grouped(group_arrays, agg_arrays, funcs, config,
                            [0, 977, 1954, 3001, 4000])
    assert np.array_equal(merged[0], whole[0])
    for (mp, ms), (wp, ws) in zip(merged[1], whole[1]):
        assert np.array_equal(mp, wp)
        assert (ms is None) == (ws is None)
        if ms is not None:
            assert np.array_equal(ms, ws)


def test_merged_scalar_partials_match_single_pass():
    rng = np.random.default_rng(8)
    values = [rng.integers(-1000, 1000, 3000).astype(np.int64)
              for _ in range(4)]
    funcs = ["sum", "min", "max", "avg"]
    config = ExecutionConfig.baseline()
    whole = scalar_aggregate(values, QueryStats(), config, funcs)
    parts = [partial_scalar_aggregate([v[lo:hi] for v in values],
                                      QueryStats(), config, funcs)
             for lo, hi in [(0, 1100), (1100, 2024), (2024, 3000)]]
    assert merge_scalar_reductions(funcs, parts) == whole
