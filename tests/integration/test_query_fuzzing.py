"""Property-based engine fuzzing: random star queries, every engine.

Hypothesis composes random-but-valid StarQueries over the SSB schema —
random dimension subsets, predicates drawn from real domain values,
random group-bys and aggregates — and asserts that the row store (two
designs) and the column store (three configurations) all return exactly
the reference engine's rows.  This is the guard against planner bugs
that the 13 fixed queries would never exercise (empty results, single
dimensions, fact-only queries, redundant predicates, ...).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import ExecutionConfig
from repro.plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    InSet,
    OrderKey,
    RangePredicate,
    StarQuery,
)
from repro.reference import execute as ref_execute
from repro.rowstore.designs import DesignKind

LO = "lineorder"

# (dimension, fk, key, attributes usable in predicates/group-bys)
DIMENSIONS = [
    ("customer", "custkey", "custkey", ["region", "nation", "city",
                                        "mktsegment"]),
    ("supplier", "suppkey", "suppkey", ["region", "nation", "city"]),
    ("part", "partkey", "partkey", ["mfgr", "category", "brand1", "size"]),
    ("date", "orderdate", "datekey", ["year", "yearmonthnum",
                                      "weeknuminyear", "monthnuminyear"]),
]

FACT_INT_COLUMNS = ["quantity", "discount", "tax"]

AGGREGATES = [
    AggExpr("sum", ColumnRef(LO, "revenue"), "revenue"),
    AggExpr("sum", BinOp("*", ColumnRef(LO, "extendedprice"),
                         ColumnRef(LO, "discount")), "gain"),
    AggExpr("sum", BinOp("-", ColumnRef(LO, "revenue"),
                         ColumnRef(LO, "supplycost")), "profit"),
    AggExpr("count", ColumnRef(LO, "orderkey"), "n"),
    AggExpr("min", ColumnRef(LO, "extendedprice"), "lo_p"),
    AggExpr("max", ColumnRef(LO, "extendedprice"), "hi_p"),
    AggExpr("avg", ColumnRef(LO, "quantity"), "avg_q"),
]


@st.composite
def star_queries(draw, data):
    chosen = draw(st.lists(st.sampled_from(range(len(DIMENSIONS))),
                           unique=True, max_size=3))
    dims = [DIMENSIONS[i] for i in sorted(chosen)]
    joins = {fk: name for name, fk, _key, _attrs in dims}
    dim_keys = {name: key for name, _fk, key, _attrs in dims
                if key != _fk_of(name, dims)}

    predicates = []
    group_by = []
    for name, _fk, _key, attrs in dims:
        attr = draw(st.sampled_from(attrs))
        column = data.table(name).column(attr)
        predicates.append(draw(_predicate_for(name, attr, column)))
        if draw(st.booleans()):
            group_attr = draw(st.sampled_from(attrs))
            ref = ColumnRef(name, group_attr)
            if ref not in group_by:
                group_by.append(ref)
    # optional fact predicate and fact group column
    if draw(st.booleans()):
        col = draw(st.sampled_from(FACT_INT_COLUMNS))
        column = data.lineorder.column(col)
        predicates.append(draw(_predicate_for(LO, col, column)))
    if draw(st.booleans()):
        group_by.append(ColumnRef(LO, "shipmode"))

    aggregates = (draw(st.sampled_from(AGGREGATES)),)
    order_by = tuple(OrderKey(g.column) for g in group_by)
    return StarQuery(
        name="fuzz",
        fact_table=LO,
        joins=joins,
        predicates=tuple(predicates),
        group_by=tuple(group_by),
        aggregates=aggregates,
        order_by=order_by,
        dim_keys={name: key for name, _fk, key, _a in dims},
    )


def _fk_of(name, dims):
    for dim_name, fk, _key, _attrs in dims:
        if dim_name == name:
            return fk
    return None


@st.composite
def _predicate_for(draw, table, attr, column):
    ref = ColumnRef(table, attr)
    if column.dictionary is not None:
        domain = column.dictionary.strings
    else:
        lo_v = int(column.data.min())
        hi_v = int(column.data.max())
        domain = None
    kind = draw(st.sampled_from(["eq", "range", "in", "cmp"]))
    if domain is not None:
        value = draw(st.sampled_from(domain))
        if kind == "range":
            other = draw(st.sampled_from(domain))
            lo, hi = min(value, other), max(value, other)
            return RangePredicate(ref, lo, hi)
        if kind == "in":
            values = draw(st.lists(st.sampled_from(domain), min_size=1,
                                   max_size=3, unique=True))
            return InSet(ref, tuple(values))
        op = CompareOp.EQ if kind == "eq" else draw(
            st.sampled_from([CompareOp.LE, CompareOp.GE, CompareOp.LT]))
        return Comparison(ref, op, value)
    value = draw(st.integers(min_value=lo_v, max_value=hi_v))
    if kind == "range":
        other = draw(st.integers(min_value=lo_v, max_value=hi_v))
        return RangePredicate(ref, min(value, other), max(value, other))
    if kind == "in":
        values = draw(st.lists(st.integers(min_value=lo_v, max_value=hi_v),
                               min_size=1, max_size=3, unique=True))
        return InSet(ref, tuple(values))
    op = CompareOp.EQ if kind == "eq" else draw(
        st.sampled_from([CompareOp.LE, CompareOp.GE, CompareOp.GT]))
    return Comparison(ref, op, value)


@pytest.fixture(scope="module")
def fuzz_env(ssb_data, system_x, cstore):
    return ssb_data, system_x, cstore


def _check(env, query, designs, configs):
    data, system_x, cstore = env
    expected = ref_execute(data.tables, query)
    for design in designs:
        run = system_x.execute(query, design)
        assert run.result.same_rows(expected), (design, query)
    for config in configs:
        run = cstore.execute(query, config)
        assert run.result.same_rows(expected), (config.label, query)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_fuzz_traditional_and_column_store(fuzz_env, data):
    query = data.draw(star_queries(fuzz_env[0]))
    _check(fuzz_env, query,
           designs=[DesignKind.TRADITIONAL],
           configs=[ExecutionConfig.baseline(),
                    ExecutionConfig.row_store_like()])


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_fuzz_vertical_partitioning_and_lm_join(fuzz_env, data):
    query = data.draw(star_queries(fuzz_env[0]))
    _check(fuzz_env, query,
           designs=[DesignKind.VERTICAL_PARTITIONING],
           configs=[ExecutionConfig.from_label("tiCL"),
                    ExecutionConfig.from_label("ticL")])


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_fuzz_bitmap_design(fuzz_env, data):
    query = data.draw(star_queries(fuzz_env[0]))
    _check(fuzz_env, query,
           designs=[DesignKind.TRADITIONAL_BITMAP], configs=[])
