"""The central correctness claim: every engine, under every physical
design and every optimization configuration, returns exactly the
reference engine's rows for all 13 SSB queries."""

import pytest

from repro.core.config import CONFIG_LADDER, ExecutionConfig
from repro.reference import execute as ref_execute
from repro.rowstore.designs import DesignKind
from repro.ssb import all_queries
from repro.ssb.denormalize import denormalize, rewrite_query
from repro.ssb.schema import FACT_SORT_KEYS
from repro.storage.colfile import CompressionLevel

QUERIES = all_queries()


@pytest.fixture(scope="module")
def oracle(ssb_data):
    return {q.name: ref_execute(ssb_data.tables, q) for q in QUERIES}


@pytest.mark.parametrize("design", list(DesignKind),
                         ids=lambda d: d.value)
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_row_store_matches_oracle(system_x, oracle, query, design):
    run = system_x.execute(query, design)
    assert run.result.same_rows(oracle[query.name]), query.name
    assert run.seconds > 0


@pytest.mark.parametrize("config", CONFIG_LADDER, ids=lambda c: c.label)
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_column_store_matches_oracle(cstore, oracle, query, config):
    run = cstore.execute(query, config)
    assert run.result.same_rows(oracle[query.name]), (query.name,
                                                      config.label)
    assert run.seconds > 0


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_row_mv_matches_oracle(cstore, oracle, query):
    run = cstore.execute_row_mv(query)
    assert run.result.same_rows(oracle[query.name]), query.name


@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_ordered_output_matches_oracle_exactly(system_x, cstore, oracle,
                                               query):
    """Beyond multiset equality: ORDER BY output order is identical."""
    row_run = system_x.execute(query, DesignKind.TRADITIONAL)
    col_run = cstore.execute(query)
    if query.order_by:
        # ties (if any) are broken arbitrarily, so compare only when the
        # ordering keys form a unique prefix
        expected = oracle[query.name]
        keys = [k.key for k in query.order_by]
        key_idx = [expected.columns.index(k) for k in keys]
        key_rows = [tuple(r[i] for i in key_idx) for r in expected.rows]
        if len(set(key_rows)) == len(key_rows):
            assert row_run.result.rows == expected.rows
            assert col_run.result.rows == expected.rows


@pytest.fixture(scope="module")
def denorm_setup(ssb_data, cstore):
    wide = denormalize(ssb_data)
    for level in CompressionLevel:
        cstore.load_table(wide, FACT_SORT_KEYS, level)
    tables = dict(ssb_data.tables)
    tables[wide.name] = wide
    return wide, tables


@pytest.mark.parametrize("level", list(CompressionLevel),
                         ids=lambda lv: lv.value)
@pytest.mark.parametrize("query", QUERIES, ids=lambda q: q.name)
def test_denormalized_matches_oracle(cstore, denorm_setup, query, level):
    _wide, tables = denorm_setup
    rewritten = rewrite_query(query)
    expected = ref_execute(tables, rewritten)
    run = cstore.execute(rewritten, ExecutionConfig.baseline(), level=level)
    assert run.result.same_rows(expected), (query.name, level.value)


def test_run_to_run_determinism(system_x, cstore):
    """Repeating a query yields identical rows and identical ledgers."""
    q = QUERIES[6]  # Q3.1
    a = cstore.execute(q)
    b = cstore.execute(q)
    assert a.result.rows == b.result.rows
    assert a.stats.snapshot() == b.stats.snapshot()
    c = system_x.execute(q, DesignKind.TRADITIONAL)
    d = system_x.execute(q, DesignKind.TRADITIONAL)
    assert c.result.rows == d.result.rows
    assert c.stats.snapshot() == d.stats.snapshot()
