"""Cost-ledger invariants: the mechanisms behind the paper's numbers.

These tests pin *why* each optimization wins, not just that it wins:
compression must reduce bytes read; the between rewrite must eliminate
hash probes; late materialization must touch fewer values than early;
block iteration must trade scalar ops for vector ops; row stores must
pay per-tuple costs that column stores do not.
"""

import dataclasses

import pytest

from repro.core.config import ExecutionConfig
from repro.rowstore.designs import DesignKind
from repro.ssb import query_by_name


def _stats(cstore, name, label, **overrides):
    config = ExecutionConfig.from_label(label)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return cstore.execute(query_by_name(name), config).stats


def test_compression_reduces_bytes_read(cstore):
    for name in ("Q1.1", "Q2.1", "Q3.1"):
        compressed = _stats(cstore, name, "tICL")
        plain = _stats(cstore, name, "ticL")
        assert compressed.bytes_read < plain.bytes_read, name


def test_compression_enables_run_operations(cstore):
    compressed = _stats(cstore, "Q1.1", "tICL")
    plain = _stats(cstore, "Q1.1", "ticL")
    assert compressed.runs_processed > 0
    assert plain.runs_processed == 0


def test_between_rewrite_eliminates_probes(cstore):
    # Q1.1's only join is the date dimension; with rewriting the fact
    # side sees zero hash probes (extraction needs none either — no
    # group-by)
    with_rewrite = _stats(cstore, "Q1.1", "tICL")
    without = _stats(cstore, "Q1.1", "tICL", between_rewriting=False)
    assert with_rewrite.hash_probes == 0
    assert without.hash_probes > 0


def test_invisible_join_replaces_probes_with_range_checks(cstore):
    invisible = _stats(cstore, "Q2.1", "tICL")
    lm_join = _stats(cstore, "Q2.1", "tiCL")
    assert invisible.hash_probes < lm_join.hash_probes
    # out-of-order extraction surfaces as scalar value ops in the LM join
    assert lm_join.values_scanned_scalar > invisible.values_scanned_scalar


def test_late_materialization_avoids_tuple_construction(cstore):
    late = _stats(cstore, "Q2.1", "TicL")
    early = _stats(cstore, "Q2.1", "Ticl")
    assert late.tuples_constructed == 0
    assert early.tuples_constructed > 0
    # and EM evaluates aggregates over far more rows than survive
    assert early.agg_updates <= early.tuples_constructed


def test_block_iteration_trades_scalar_for_vector(cstore):
    block = _stats(cstore, "Q2.1", "ticL")
    tuple_mode = _stats(cstore, "Q2.1", "TicL")
    assert block.values_scanned_vector > block.values_scanned_scalar
    assert tuple_mode.values_scanned_scalar > tuple_mode.values_scanned_vector
    assert tuple_mode.block_calls == 0


def test_selective_query_reads_few_pages(cstore):
    # Q1.3 survives ~0.01% of positions; pipelined predicate application
    # restricts every later scan/fetch to a handful of blocks
    compressed = _stats(cstore, "Q1.3", "tICL")
    plain = _stats(cstore, "Q1.3", "ticL")
    assert compressed.pages_read < 25
    assert compressed.bytes_read < 0.3 * plain.bytes_read


def test_row_store_pays_per_tuple_costs(system_x, cstore):
    q = query_by_name("Q2.1")
    row = system_x.execute(q, DesignKind.TRADITIONAL).stats
    col = cstore.execute(q).stats
    fact_rows = system_x.data.lineorder.num_rows
    assert row.iterator_calls >= fact_rows   # one next() per tuple
    assert row.tuple_bytes_scanned > 0
    assert col.iterator_calls == 0
    assert col.tuple_bytes_scanned == 0


def test_vertical_partitioning_reads_headers(system_x):
    q = query_by_name("Q2.1")
    vp = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING).stats
    t = system_x.execute(q, DesignKind.TRADITIONAL).stats
    # four 16-byte-per-value column tables read about as many bytes as
    # the whole 17-column fact table (Section 6.2's key observation)
    assert vp.bytes_read > 0.5 * t.bytes_read


def test_index_only_pays_giant_hash_joins(system_x):
    q = query_by_name("Q2.1")
    ai = system_x.execute(q, DesignKind.INDEX_ONLY).stats
    t = system_x.execute(q, DesignKind.TRADITIONAL).stats
    assert ai.hash_inserts > 5 * t.hash_inserts
    assert ai.bytes_written > 0  # spilled partitions


def test_mv_reads_fewer_bytes_than_traditional(system_x):
    q = query_by_name("Q2.1")
    mv = system_x.execute(q, DesignKind.MATERIALIZED_VIEWS).stats
    t = system_x.execute(q, DesignKind.TRADITIONAL).stats
    assert mv.bytes_read < 0.6 * t.bytes_read


def test_row_mv_reads_all_years(cstore, system_x):
    q = query_by_name("Q1.1")  # restricts to one year
    row_mv = cstore.execute_row_mv(q).stats
    rs_mv = system_x.execute(q, DesignKind.MATERIALIZED_VIEWS).stats
    # C-Store has no partitioning: the row-MV scan reads every year.
    # (At the test's tiny SF the date-dimension read — identical on both
    # sides — is a large share of rs_mv's bytes, diluting the fact-side
    # 7x considerably.)
    assert row_mv.bytes_read >= 1.9 * rs_mv.bytes_read
