"""LIMIT support through the IR, SQL, and every engine."""

import dataclasses

import pytest

from repro.core.config import ExecutionConfig
from repro.errors import PlanError, SqlParseError
from repro.reference import execute as ref_execute
from repro.rowstore.designs import DesignKind
from repro.sql import parse_query
from repro.ssb import query_by_name


def _limited(query, n):
    return dataclasses.replace(query, limit=n)


def test_limit_in_ir(ssb_data):
    q = query_by_name("Q3.1")
    full = ref_execute(ssb_data.tables, q)
    top5 = ref_execute(ssb_data.tables, _limited(q, 5))
    assert len(top5) == 5
    assert top5.rows == full.rows[:5]


def test_limit_zero_and_oversize(ssb_data):
    q = query_by_name("Q2.1")
    assert len(ref_execute(ssb_data.tables, _limited(q, 0))) == 0
    full = ref_execute(ssb_data.tables, q)
    assert ref_execute(ssb_data.tables,
                       _limited(q, 10 ** 6)).rows == full.rows


def test_negative_limit_rejected():
    with pytest.raises(PlanError):
        _limited(query_by_name("Q2.1"), -1)


def test_limit_across_engines(ssb_data, system_x, cstore):
    q = _limited(query_by_name("Q3.2"), 7)
    expected = ref_execute(ssb_data.tables, q)
    assert len(expected) == 7
    for design in (DesignKind.TRADITIONAL, DesignKind.MATERIALIZED_VIEWS,
                   DesignKind.VERTICAL_PARTITIONING):
        got = system_x.execute(q, design).result
        assert len(got) == 7
        assert got.same_rows(expected), design
    for label in ("tICL", "ticL", "Ticl"):
        got = cstore.execute(q, ExecutionConfig.from_label(label)).result
        assert len(got) == 7
        assert got.same_rows(expected), label
    got = cstore.execute_row_mv(q).result
    assert len(got) == 7


def test_limit_top_n_semantics(ssb_data, cstore):
    """ORDER BY revenue DESC LIMIT 3 returns the global top 3."""
    q = _limited(query_by_name("Q3.1"), 3)
    got = cstore.execute(q).result
    full = ref_execute(ssb_data.tables, query_by_name("Q3.1"))
    assert got.rows == full.rows[:3]


def test_limit_in_sql():
    q = parse_query(
        "SELECT s.nation, sum(lo.revenue) AS revenue "
        "FROM lineorder AS lo, supplier AS s "
        "WHERE lo.suppkey = s.suppkey "
        "GROUP BY s.nation ORDER BY revenue DESC LIMIT 5")
    assert q.limit == 5


def test_limit_sql_requires_number():
    with pytest.raises(SqlParseError):
        parse_query("SELECT sum(revenue) AS r FROM lineorder LIMIT many")
