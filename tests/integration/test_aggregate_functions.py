"""MIN/MAX/AVG/COUNT through every engine, checked against the oracle
and against hand-computed numpy answers."""

import numpy as np
import pytest

from repro.core.config import CONFIG_LADDER, ExecutionConfig
from repro.plan.aggregates import (
    empty_accumulator,
    finalize,
    merge,
    reduce_groups,
    reduce_scalar,
)
from repro.plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    OrderKey,
    StarQuery,
)
from repro.errors import PlanError
from repro.reference import execute as ref_execute
from repro.rowstore.designs import DesignKind
from repro.sql import parse_query

LO = "lineorder"


def _query(func, expr_col="revenue", group=True):
    return StarQuery(
        name=f"agg-{func}",
        fact_table=LO,
        joins={"suppkey": "supplier"},
        predicates=(Comparison(ColumnRef("supplier", "region"),
                               CompareOp.EQ, "ASIA"),),
        group_by=(ColumnRef("supplier", "nation"),) if group else (),
        aggregates=(AggExpr(func, ColumnRef(LO, expr_col), "out"),),
        order_by=(OrderKey("nation"),) if group else (),
    )


# --------------------------------------------------------------------- #
# semantics module
# --------------------------------------------------------------------- #
def test_reduce_scalar_each_func():
    values = np.array([5, 1, 9], dtype=np.int64)
    assert reduce_scalar("sum", values) == (15, None)
    assert reduce_scalar("count", values) == (3, None)
    assert reduce_scalar("min", values) == (1, None)
    assert reduce_scalar("max", values) == (9, None)
    assert reduce_scalar("avg", values) == (15, 3)


def test_finalize_avg_and_empties():
    assert finalize("avg", 15, 3) == pytest.approx(5.0)
    assert finalize("avg", 0, 0) == 0.0
    assert finalize("min", *empty_accumulator("min")) == 0
    assert finalize("max", *empty_accumulator("max")) == 0
    assert finalize("sum", 7, None) == 7


def test_merge_associativity():
    a = reduce_scalar("min", np.array([5, 3], dtype=np.int64))
    b = reduce_scalar("min", np.array([4], dtype=np.int64))
    assert merge("min", a, b) == (3, None)
    x = reduce_scalar("avg", np.array([10], dtype=np.int64))
    y = reduce_scalar("avg", np.array([20, 30], dtype=np.int64))
    assert merge("avg", x, y) == (60, 3)


def test_reduce_groups_each_func():
    values = np.array([4, 8, 1], dtype=np.int64)
    inverse = np.array([0, 0, 1])
    for func, expected in (("sum", [12, 1]), ("count", [2, 1]),
                           ("min", [4, 1]), ("max", [8, 1])):
        primary, _sec = reduce_groups(func, values, inverse, 2)
        assert primary.tolist() == expected, func


def test_unsupported_func_rejected():
    with pytest.raises(PlanError):
        AggExpr("median", ColumnRef(LO, "revenue"), "m")


# --------------------------------------------------------------------- #
# engines vs oracle
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("func", ["min", "max", "avg", "count"])
def test_all_engines_agree(ssb_data, system_x, cstore, func):
    for group in (True, False):
        query = _query(func, group=group)
        expected = ref_execute(ssb_data.tables, query)
        for design in (DesignKind.TRADITIONAL,
                       DesignKind.VERTICAL_PARTITIONING,
                       DesignKind.TRADITIONAL_BITMAP):
            run = system_x.execute(query, design)
            assert run.result.same_rows(expected), (func, design, group)
        for label in ("tICL", "tiCL", "ticL", "Ticl"):
            run = cstore.execute(query, ExecutionConfig.from_label(label))
            assert run.result.same_rows(expected), (func, label, group)


def test_oracle_matches_numpy(ssb_data):
    query = _query("min", group=False)
    result = ref_execute(ssb_data.tables, query)
    # hand-compute: min revenue among Asian-supplier line orders
    supp = ssb_data.supplier
    asia = supp.column("region").data == \
        supp.column("region").dictionary.code("ASIA")
    asia_keys = set(supp.column("suppkey").data[asia].tolist())
    fk = ssb_data.lineorder.column("suppkey").data
    mask = np.isin(fk, np.asarray(sorted(asia_keys)))
    expected = int(ssb_data.lineorder.column("revenue").data[mask].min())
    assert result.rows == [(expected,)]


def test_avg_is_exact_division(ssb_data):
    query = _query("avg", group=False)
    result = ref_execute(ssb_data.tables, query)
    supp = ssb_data.supplier
    asia = supp.column("region").data == \
        supp.column("region").dictionary.code("ASIA")
    asia_keys = np.asarray(sorted(
        supp.column("suppkey").data[asia].tolist()))
    fk = ssb_data.lineorder.column("suppkey").data
    mask = np.isin(fk, asia_keys)
    values = ssb_data.lineorder.column("revenue").data[mask].astype(
        np.int64)
    expected = float(values.sum()) / len(values)
    assert result.rows[0][0] == expected


def test_multiple_aggregates_in_one_query(ssb_data, system_x, cstore):
    query = StarQuery(
        name="multi",
        fact_table=LO,
        joins={"suppkey": "supplier"},
        predicates=(Comparison(ColumnRef("supplier", "region"),
                               CompareOp.EQ, "EUROPE"),),
        group_by=(ColumnRef("supplier", "nation"),),
        aggregates=(
            AggExpr("sum", ColumnRef(LO, "revenue"), "total"),
            AggExpr("count", ColumnRef(LO, "revenue"), "n"),
            AggExpr("min", ColumnRef(LO, "quantity"), "lo_q"),
            AggExpr("max", ColumnRef(LO, "quantity"), "hi_q"),
            AggExpr("avg", ColumnRef(LO, "discount"), "avg_d"),
        ),
        order_by=(OrderKey("nation"),),
    )
    expected = ref_execute(ssb_data.tables, query)
    assert system_x.execute(query, DesignKind.TRADITIONAL).result \
        .same_rows(expected)
    assert cstore.execute(query).result.same_rows(expected)
    # sanity: avg = total/n is consistent within each oracle row
    cols = expected.columns
    for row in expected.rows:
        assert row[cols.index("lo_q")] <= row[cols.index("hi_q")]


def test_sql_min_max_avg(ssb_data):
    q = parse_query(
        "SELECT s.nation, min(lo.revenue) AS lo_r, max(lo.revenue) AS hi_r,"
        " avg(lo.quantity) AS q FROM lineorder AS lo, supplier AS s "
        "WHERE lo.suppkey = s.suppkey AND s.region = 'AFRICA' "
        "GROUP BY s.nation ORDER BY nation")
    assert [a.func for a in q.aggregates] == ["min", "max", "avg"]
    result = ref_execute(ssb_data.tables, q)
    assert len(result) > 0
    for row in result.rows:
        assert row[1] <= row[2]
        assert isinstance(row[3], float)
