"""Shared fixtures: one small SSB database and engines built once.

Scale factor 0.01 (60,000 fact rows) keeps the full suite fast while
leaving every dimension domain fully populated (all 250 cities, all
1000 brands).  Engines are session-scoped; each query execution gets its
own ledger, so sharing engines across tests does not leak measurements.
"""

import pytest

from repro.colstore.engine import CStore
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats
from repro.ssb.generator import generate

SMALL_SF = 0.01


@pytest.fixture(scope="session")
def ssb_data():
    """The shared small SSB database (deterministic)."""
    return generate(SMALL_SF)


@pytest.fixture(scope="session")
def system_x(ssb_data):
    """A row store with all five designs built."""
    return SystemX(ssb_data, designs=list(DesignKind))


@pytest.fixture(scope="session")
def cstore(ssb_data):
    """A column store with compressed + plain projections and row-MVs."""
    return CStore(ssb_data, row_mv=True)


@pytest.fixture()
def disk():
    """A fresh simulated disk with its own ledger."""
    return SimulatedDisk(QueryStats())


@pytest.fixture()
def pool(disk):
    """A small buffer pool over the fresh disk."""
    return BufferPool(disk, capacity_bytes=64 * 32 * 1024)
