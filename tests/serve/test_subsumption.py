"""Property test: pairwise subsumption over the whole SSB flight.

For every ordered pair (cached, requested) of the 13 SSB queries, on
both engines: cache exactly one query's positions, then ask for every
other query.  Whatever the cache decides — exact hit, subsumption
re-filter, or miss — the result rows must be identical to a cold direct
engine run, and the set of pairs that re-filter must be exactly the
pairs whose predicates are genuinely contained:

    Q4.2 within Q4.1   (symbolic: identical dimension constraints)
    Q4.3 within Q4.1   (key sets: US suppliers in AMERICA, MFGR#14
                        parts in {MFGR#1, MFGR#2})
    Q4.3 within Q4.2   (same containments, plus matching year sets)
    Q3.4 within Q3.3   (key sets: Dec1997 dates in year 1992..1997)

Any extra pair would mean the cache served rows it could not prove
correct; any missing pair would mean subsumption never fires.
"""

import pytest

from repro.rowstore.designs import DesignKind
from repro.serve import QueryService, ServiceConfig
from repro.ssb.queries import ALL_QUERIES

EXPECTED_PAIRS = {
    ("Q4.1", "Q4.2"),
    ("Q4.1", "Q4.3"),
    ("Q4.2", "Q4.3"),
    ("Q3.3", "Q3.4"),
}


@pytest.fixture(scope="module")
def baselines(cstore, system_x):
    """Cold direct-engine results for every query on both engines."""
    cold = {}
    for query in ALL_QUERIES:
        cold[("cs", query.name)] = cstore.execute(query).result
        cold[("rs", query.name)] = system_x.execute(
            query, DesignKind.TRADITIONAL).result
    return cold


@pytest.mark.parametrize("engine", ["cs", "rs"])
def test_pairwise_subsumption_is_exact_and_row_identical(
        engine, cstore, system_x, baselines):
    observed = set()
    for cached_query in ALL_QUERIES:
        service = QueryService(
            cstore=cstore, system_x=system_x,
            config=ServiceConfig(cache_admit_seconds=0.0))
        session = service.session(engine=engine)
        seeded = session.execute(cached_query)
        assert seeded.source == "engine"
        assert seeded.result.same_rows(
            baselines[(engine, cached_query.name)])
        # freeze the cache: later engine runs must not be admitted, so
        # every hit below is attributable to cached_query alone
        service.cache.admit_seconds = float("inf")
        for requested in ALL_QUERIES:
            run = session.execute(requested)
            assert run.result.same_rows(
                baselines[(engine, requested.name)]), (
                f"{engine}: {requested.name} served from "
                f"{cached_query.name} deviates ({run.source})")
            if requested is cached_query:
                assert run.source == "cache-exact"
            elif run.source == "cache-refilter":
                observed.add((cached_query.name, requested.name))
            else:
                assert run.source == "engine"
        service.close()
    assert observed == EXPECTED_PAIRS
