"""Unit and property tests for the semantic cache's constraint algebra.

The load-bearing guarantee is one-sided: ``implies(a, b) == True`` must
mean every value satisfying ``a`` satisfies ``b``.  False negatives only
cost cache hits; a false positive would serve wrong rows.  The
randomized tests brute-force that containment over a small integer
domain.
"""

import random

import pytest

from repro.plan.logical import (
    ColumnRef,
    CompareOp,
    Comparison,
    InSet,
    RangePredicate,
)
from repro.serve.semcache import (
    Interval,
    SemanticCache,
    TOP,
    ValueSet,
    constraint_of,
    implies,
    intersect,
    normalize_query,
    query_key,
    subsumption_gaps,
)
from repro.ssb.queries import (
    ALL_QUERIES,
    Q1_1,
    Q1_2,
    Q2_1,
    Q2_2,
    Q3_3,
    Q3_4,
    Q4_1,
    Q4_2,
    Q4_3,
    query_by_name,
)

DOMAIN = list(range(-2, 13))


def _satisfying(constraint):
    if isinstance(constraint, ValueSet):
        return {v for v in DOMAIN if v in set(constraint.values)}
    return {v for v in DOMAIN if constraint.contains(v)}


def _random_constraint(rng):
    kind = rng.random()
    if kind < 0.35:
        return ValueSet(tuple(sorted(rng.sample(
            DOMAIN, rng.randint(0, 4)))))
    low = rng.choice([None] + DOMAIN)
    high = rng.choice([None] + DOMAIN)
    return Interval(low, high, rng.random() < 0.5, rng.random() < 0.5)


# -------------------------------------------------------------------- #
# constraint algebra
# -------------------------------------------------------------------- #
def test_constraint_of_each_predicate_shape():
    year = ColumnRef("date", "year")
    qty = ColumnRef("lineorder", "quantity")
    assert constraint_of(
        Comparison(year, CompareOp.EQ, 1993)) == ValueSet((1993,))
    assert constraint_of(
        Comparison(qty, CompareOp.LT, 25)) == Interval(
            high=25, high_open=True)
    assert constraint_of(
        Comparison(qty, CompareOp.GE, 26)) == Interval(low=26)
    assert constraint_of(
        RangePredicate(qty, 1, 3)) == Interval(low=1, high=3)
    assert constraint_of(
        InSet(year, (1998, 1997))) == ValueSet((1997, 1998))


def test_implies_basic_containments():
    assert implies(ValueSet((1993,)), Interval(low=1992, high=1997))
    assert not implies(Interval(low=1992, high=1997), ValueSet((1993,)))
    assert implies(Interval(low=2, high=3), Interval(low=1, high=3))
    assert not implies(Interval(low=1, high=3), Interval(low=2, high=3))
    assert implies(ValueSet((1, 2)), ValueSet((1, 2, 3)))
    assert not implies(ValueSet((1, 4)), ValueSet((1, 2, 3)))
    # a closed single-point interval is a value; a half-open one is
    # empty and therefore implies anything
    assert implies(Interval(low=5, high=5), ValueSet((4, 5)))
    assert implies(Interval(low=5, high=5, low_open=True),
                   ValueSet((1,)))
    # a genuinely wider interval cannot be proven inside a value set
    assert not implies(Interval(low=4, high=5), ValueSet((4, 5)))
    # everything implies TOP; empty implies everything
    assert implies(ValueSet(()), ValueSet((9,)))
    assert implies(Interval(low=3), TOP)


def test_implies_open_endpoints():
    assert implies(Interval(low=1, low_open=True), Interval(low=1))
    assert not implies(Interval(low=1), Interval(low=1, low_open=True))
    assert implies(Interval(high=9, high_open=True), Interval(high=9))
    assert not implies(Interval(high=9), Interval(high=9, high_open=True))


def test_implies_is_conservative_on_mixed_types():
    # incomparable value types must yield False, never raise
    assert not implies(Interval(low="ASIA"), Interval(low=3))


@pytest.mark.parametrize("seed", range(5))
def test_implies_matches_brute_force(seed):
    rng = random.Random(20080609 + seed)
    for _ in range(400):
        a, b = _random_constraint(rng), _random_constraint(rng)
        claimed = implies(a, b)
        actual = _satisfying(a) <= _satisfying(b)
        if claimed:
            assert actual, f"false positive: {a} => {b}"
        elif not actual:
            assert not claimed
        # unbounded intervals extend beyond DOMAIN, so a brute-force
        # containment inside DOMAIN may still be a legitimate False —
        # only the claimed=True direction is load-bearing


@pytest.mark.parametrize("seed", range(3))
def test_intersect_matches_brute_force(seed):
    rng = random.Random(77 + seed)
    for _ in range(400):
        a, b = _random_constraint(rng), _random_constraint(rng)
        merged = intersect(a, b)
        assert _satisfying(merged) == _satisfying(a) & _satisfying(b)


# -------------------------------------------------------------------- #
# query normalization
# -------------------------------------------------------------------- #
def test_normalize_folds_same_column_predicates():
    sig = normalize_query(Q1_1)
    by_col = sig.by_column()
    assert by_col[("lineorder", "quantity")] == Interval(
        high=25, high_open=True)
    assert by_col[("lineorder", "discount")] == Interval(low=1, high=3)
    assert by_col[("date", "year")] == ValueSet((1993,))
    assert sig.fact_table == "lineorder"


def test_query_key_is_structural_not_nominal():
    renamed = Q1_1.replace(name="totally-different-name") \
        if hasattr(Q1_1, "replace") else None
    if renamed is None:
        import dataclasses
        renamed = dataclasses.replace(Q1_1, name="totally-different")
    assert query_key(renamed) == query_key(Q1_1)
    assert query_key(Q1_1) != query_key(Q1_2)
    import dataclasses
    limited = dataclasses.replace(Q1_1, limit=5)
    assert query_key(limited) != query_key(Q1_1)


def test_all_13_query_keys_distinct():
    keys = {query_key(q) for q in ALL_QUERIES}
    assert len(keys) == len(ALL_QUERIES)


# -------------------------------------------------------------------- #
# subsumption over the real SSB flight
# -------------------------------------------------------------------- #
def test_q42_subsumed_by_q41_symbolically():
    gaps = subsumption_gaps(normalize_query(Q4_2), normalize_query(Q4_1))
    assert gaps == []  # fully proven, no key-set check needed


def test_q43_needs_keyset_checks_on_part_and_supplier():
    gaps = subsumption_gaps(normalize_query(Q4_3), normalize_query(Q4_1))
    assert gaps is not None
    assert set(gaps) == {"part", "supplier"}


def test_q34_needs_keyset_check_on_date():
    gaps = subsumption_gaps(normalize_query(Q3_4), normalize_query(Q3_3))
    assert gaps == ["date"]


def test_fact_predicate_mismatch_is_rejected_outright():
    # Q1.2's discount/quantity ranges are not inside Q1.1's: fact-side
    # failure, no dimension check can rescue it
    assert subsumption_gaps(
        normalize_query(Q1_2), normalize_query(Q1_1)) is None
    assert subsumption_gaps(
        normalize_query(Q1_1), normalize_query(Q1_2)) is None


def test_q22_not_served_by_q21_after_keyset_check():
    # symbolic gaps exist (different part/supplier constraints) but the
    # key sets cannot contain each other: ASIA suppliers are not a
    # subset of AMERICA suppliers
    gaps = subsumption_gaps(normalize_query(Q2_2), normalize_query(Q2_1))
    assert gaps is None or "supplier" in gaps


# -------------------------------------------------------------------- #
# cache mechanics
# -------------------------------------------------------------------- #
def test_result_cache_round_trip_and_lru_eviction():
    from repro.result import ResultSet

    cache = SemanticCache(budget_bytes=1, admit_seconds=0.0)
    scope = ("cs", "tICL", "max")
    small = ResultSet(["x"], [(1,)])
    assert cache.admit_result(scope, Q1_1, small, 1.0,
                              frozenset({"lineorder"}))
    # budget of one byte: admitting a second entry evicts the first
    assert cache.admit_result(scope, Q1_2, small, 1.0,
                              frozenset({"lineorder"}))
    assert cache.lookup_result(scope, Q1_1) is None
    assert cache.lookup_result(scope, Q1_2) is not None
    assert cache.counters.evictions >= 1


def test_cheap_queries_are_not_admitted():
    from repro.result import ResultSet

    cache = SemanticCache(admit_seconds=10.0)
    assert not cache.admit_result(("cs",), Q1_1, ResultSet(["x"], [(1,)]),
                                  0.5, frozenset({"lineorder"}))
    assert len(cache) == 0
    assert cache.counters.rejected_cheap == 1


def test_invalidate_by_table_and_wholesale():
    from repro.result import ResultSet

    cache = SemanticCache(admit_seconds=0.0)
    scope = ("cs",)
    cache.admit_result(scope, Q1_1, ResultSet(["x"], [(1,)]), 1.0,
                       frozenset({"lineorder", "date"}))
    cache.admit_result(scope, Q2_1, ResultSet(["x"], [(1,)]), 1.0,
                       frozenset({"lineorder", "part", "supplier",
                                  "date"}))
    assert cache.invalidate("part") == 1
    assert cache.lookup_result(scope, Q1_1) is not None
    assert cache.lookup_result(scope, Q2_1) is None
    assert cache.invalidate() == 1
    assert len(cache) == 0


def test_scopes_do_not_bleed():
    from repro.result import ResultSet

    cache = SemanticCache(admit_seconds=0.0)
    cache.admit_result(("cs", "tICL"), Q1_1, ResultSet(["x"], [(1,)]),
                       1.0, frozenset({"lineorder"}))
    assert cache.lookup_result(("cs", "TICL"), Q1_1) is None
    assert cache.lookup_result(("rs", "T"), Q1_1) is None
    assert cache.lookup_result(("cs", "tICL"), Q1_1) is not None


def test_query_by_name_round_trip():
    for query in ALL_QUERIES:
        assert query_by_name(query.name) is query
