"""Query service behavior: admission, honesty, traces, faults, sharing."""

import threading
import time

import pytest

from repro.core.config import ExecutionConfig
from repro.errors import (
    AdmissionError,
    CorruptPageError,
    DeadlineError,
    ServiceError,
)
from repro.rowstore.designs import DesignKind
from repro.serve import QueryService, ServiceConfig
from repro.serve.service import AdmissionController
from repro.ssb.queries import Q1_1, Q2_1, Q3_2, Q4_1


# -------------------------------------------------------------------- #
# admission control (unit level — no engines involved)
# -------------------------------------------------------------------- #
def test_admission_counts_and_release():
    ctl = AdmissionController(max_in_flight=2, queue_limit=4,
                              queue_timeout=1.0)
    ctl.acquire()
    ctl.acquire()
    assert ctl.in_flight == 2
    ctl.release()
    ctl.release()
    assert ctl.in_flight == 0


def test_admission_queue_overflow_is_typed_and_immediate():
    ctl = AdmissionController(max_in_flight=1, queue_limit=0,
                              queue_timeout=5.0)
    ctl.acquire()
    started = time.perf_counter()
    with pytest.raises(AdmissionError):
        ctl.acquire()
    assert time.perf_counter() - started < 1.0  # rejected, not queued
    ctl.release()


def test_admission_queue_timeout():
    ctl = AdmissionController(max_in_flight=1, queue_limit=4,
                              queue_timeout=0.05)
    ctl.acquire()
    with pytest.raises(AdmissionError):
        ctl.acquire()  # waits queue_timeout, then gives up
    ctl.release()


def test_admission_deadline_beats_queue_timeout():
    ctl = AdmissionController(max_in_flight=1, queue_limit=4,
                              queue_timeout=30.0)
    ctl.acquire()
    with pytest.raises(DeadlineError):
        ctl.acquire(deadline_at=time.monotonic() + 0.05)
    ctl.release()


def test_admission_is_fifo():
    ctl = AdmissionController(max_in_flight=1, queue_limit=8,
                              queue_timeout=5.0)
    ctl.acquire()
    order = []
    barrier = threading.Barrier(3)

    def waiter(tag, delay):
        barrier.wait()
        time.sleep(delay)  # stagger arrival order deterministically
        ctl.acquire()
        order.append(tag)
        ctl.release()

    threads = [threading.Thread(target=waiter, args=("first", 0.0)),
               threading.Thread(target=waiter, args=("second", 0.15))]
    for thread in threads:
        thread.start()
    barrier.wait()
    time.sleep(0.4)  # both are queued now
    ctl.release()
    for thread in threads:
        thread.join()
    assert order == ["first", "second"]


def test_drain_rejects_new_and_waits_for_in_flight():
    ctl = AdmissionController(max_in_flight=2, queue_limit=4,
                              queue_timeout=1.0)
    ctl.acquire()
    done = []

    def finish_later():
        time.sleep(0.1)
        ctl.release()
        done.append(True)

    thread = threading.Thread(target=finish_later)
    thread.start()
    ctl.drain()  # returns only after the in-flight query released
    assert done == [True]
    with pytest.raises(AdmissionError):
        ctl.acquire()
    ctl.resume()
    ctl.acquire()
    ctl.release()
    thread.join()


def test_service_errors_are_repro_errors():
    assert issubclass(AdmissionError, ServiceError)
    assert issubclass(DeadlineError, ServiceError)


# -------------------------------------------------------------------- #
# honest accounting
# -------------------------------------------------------------------- #
def test_cache_disabled_ledger_is_byte_identical_to_direct(
        cstore, system_x):
    service = QueryService(cstore=cstore, system_x=system_x)
    for query in (Q1_1, Q2_1, Q4_1):
        run = service.submit(query, session=service.session(engine="cs"),
                             cached=False)
        direct = cstore.execute(query)
        assert run.stats.snapshot() == direct.stats.snapshot()
        assert run.result.same_rows(direct.result)
        run = service.submit(query, session=service.session(engine="rs"),
                             cached=False)
        direct = system_x.execute(query, DesignKind.TRADITIONAL)
        assert run.stats.snapshot() == direct.stats.snapshot()
        assert run.result.same_rows(direct.result)
    service.close()


def test_cache_counters_are_zero_on_direct_engine_runs(cstore):
    snapshot = cstore.execute(Q1_1).stats.snapshot()
    for counter in ("cache_lookups", "cache_exact_hits",
                    "cache_subsumption_hits", "cache_misses",
                    "cache_refiltered_positions"):
        assert snapshot[counter] == 0


# -------------------------------------------------------------------- #
# traces
# -------------------------------------------------------------------- #
def test_served_traces_carry_service_spans_and_verify(cstore, system_x):
    with QueryService(cstore=cstore, system_x=system_x,
                      config=ServiceConfig(cache_admit_seconds=0.0)
                      ) as service:
        session = service.session(engine="cs")
        first = session.execute(Q2_1)
        assert first.source == "engine"
        names = first.trace.span_names()
        assert names[0] == "service"
        assert "admission-wait" in names and "cache-lookup" in names
        assert "cache-admit" in names
        first.trace.verify(first.stats)

        exact = session.execute(Q2_1)
        assert exact.source == "cache-exact"
        assert "cache-lookup" in exact.trace.span_names()
        exact.trace.verify(exact.stats)

        session.execute(Q4_1)
        from repro.ssb.queries import Q4_2
        sub = session.execute(Q4_2)
        assert sub.source == "cache-refilter"
        assert "cache-refilter" in sub.trace.span_names()
        sub.trace.verify(sub.stats)


def test_exact_hit_is_strictly_cheaper(cstore, system_x):
    with QueryService(cstore=cstore, system_x=system_x,
                      config=ServiceConfig(cache_admit_seconds=0.0)
                      ) as service:
        session = service.session(engine="rs")
        first = session.execute(Q3_2)
        again = session.execute(Q3_2)
        assert again.source == "cache-exact"
        assert again.seconds < first.seconds
        assert again.stats.pages_read == 0


# -------------------------------------------------------------------- #
# deadlines / sessions at the service level
# -------------------------------------------------------------------- #
def test_expired_deadline_is_a_typed_service_error(cstore, system_x):
    with QueryService(cstore=cstore, system_x=system_x) as service:
        session = service.session(engine="cs")
        with pytest.raises(DeadlineError):
            session.execute(Q1_1, deadline=0.0)
        stats = service.serve_stats()
        assert stats["service"]["deadline_misses"] == 1
        assert stats["service"]["rejected"] == 1


def test_closed_service_refuses_work(cstore, system_x):
    service = QueryService(cstore=cstore, system_x=system_x)
    session = service.session(engine="cs")
    service.close()
    with pytest.raises(AdmissionError):
        session.execute(Q1_1)


def test_unattached_engine_is_an_error(cstore):
    service = QueryService(cstore=cstore)
    with pytest.raises(Exception):
        service.session(engine="rs")
    service.close()


# -------------------------------------------------------------------- #
# fault failover through the service
# -------------------------------------------------------------------- #
def test_corruption_surfaces_as_typed_error_through_service(
        cstore, system_x):
    disk = cstore.disk
    victims = [name for name in disk.files()
               if name.startswith("lineorder.")
               and name.endswith(".quantity")]
    assert victims
    with QueryService(cstore=cstore, system_x=system_x) as service:
        session = service.session(engine="cs")
        try:
            for name in victims:
                disk.quarantine(name, 0)
            with pytest.raises(CorruptPageError):
                session.execute(Q1_1)
            stats = service.serve_stats()
            assert stats["service"]["failed"] == 1
        finally:
            for name in victims:
                disk.unquarantine(name, 0)
        # the service recovers once the pages heal
        ok = session.execute(Q1_1)
        assert ok.result.rows


def test_transient_faults_retry_and_heal_through_service(
        cstore, system_x):
    from repro.simio.faults import FaultInjector, FaultPolicy

    with QueryService(cstore=cstore, system_x=system_x) as service:
        session = service.session(engine="cs")
        baseline = session.execute(Q1_1, cached=False)
        injector = FaultInjector(101, [FaultPolicy(
            transient_rate=0.2, max_transient_failures=2)])
        injector.install(cstore.disk)
        try:
            healed = session.execute(Q1_1, cached=False)
        finally:
            cstore.disk.fault_injector = None
        assert healed.result.same_rows(baseline.result)
        assert healed.stats.io_retries > 0  # the schedule actually fired
        healed.trace.verify(healed.stats)


# -------------------------------------------------------------------- #
# shared scans
# -------------------------------------------------------------------- #
def test_shared_scan_wave_serves_identical_rows(cstore, system_x):
    config = ServiceConfig(max_in_flight=8, shared_scans=True,
                           cache=False)
    with QueryService(cstore=cstore, system_x=system_x,
                      config=config) as service:
        # hold the engine lock so every client queues into one band,
        # then release: the first waiter becomes the wave leader
        lock = service._engine_locks["cs"]
        results = []
        errors = []

        def client():
            session = service.session(engine="cs")
            try:
                results.append(session.execute(Q2_1))
            except BaseException as error:  # pragma: no cover
                errors.append(error)

        probe = service.session(engine="cs")
        key = service._adapters["cs"].share_key(Q2_1, probe)
        with lock:
            threads = [threading.Thread(target=client) for _ in range(4)]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 5.0
            while service.sharing.pending(key) < 4 \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 4
        reference = cstore.execute(Q2_1).result
        for run in results:
            assert run.result.same_rows(reference)
        stats = service.serve_stats()
        assert stats["service"]["shared_waves"] >= 1
        assert stats["service"]["shared_followers"] >= 1
        # a follower rode the leader's warm pool: strictly fewer
        # physical page reads than the cold leader
        followers = [r for r in results if r.shared]
        assert followers
