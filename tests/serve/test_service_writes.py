"""Service-layer writes: every attached engine mutates in lockstep,
cached entries for the written table (exact AND subsumption donors) are
evicted, the cache is bypassed while a delta is pending, and SQL DML
dispatches through ``execute_sql``."""

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import ReproError
from repro.reference import execute as reference_execute
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.serve import QueryService, ServiceConfig
from repro.ssb.generator import generate
from repro.ssb.queries import query_by_name
from tests.write.dml import clone_rows, delete_predicates

SERVE_SF = 0.004

Q1_1 = query_by_name("Q1.1")
Q3_1 = query_by_name("Q3.1")
Q4_1 = query_by_name("Q4.1")
Q4_2 = query_by_name("Q4.2")


@pytest.fixture(scope="module")
def sdata():
    return generate(SERVE_SF)


@pytest.fixture
def served(sdata):
    cs = CStore(sdata)
    rs = SystemX(sdata, designs=list(DesignKind), writes=True)
    with QueryService(cs, rs, config=ServiceConfig(
            cache=True, cache_admit_seconds=0.0,
            breakers=False)) as service:
        yield service, cs, rs


def _sessions(service):
    return (service.session("c", engine="cs",
                            config=ExecutionConfig(writes=True)),
            service.session("r", engine="rs"))


def test_writes_apply_to_every_engine(served):
    service, cs, rs = served
    deleted = service.delete("lineorder", delete_predicates())
    assert deleted > 0
    assert cs.pending_writes() == rs.pending_writes() == deleted
    moved = service.move()
    assert moved == deleted
    assert cs.pending_writes() == rs.pending_writes() == 0
    snap = service.stats.snapshot()
    assert snap["writes"] == 1 and snap["moves"] == 1


def test_diverged_engines_are_a_typed_error(served, sdata):
    service, cs, _rs = served
    # a direct write to one engine bypasses the service and diverges
    # the stores; the next service write must refuse, not mask it
    cs.delete("lineorder", delete_predicates())
    with pytest.raises(ReproError, match="diverged"):
        service.delete("lineorder", delete_predicates())


def test_invalidate_evicts_written_table_only(served, sdata):
    service, _cs, _rs = served
    s_cs, _s_rs = _sessions(service)
    assert s_cs.execute(Q1_1).source == "engine"  # {lineorder, date}
    assert s_cs.execute(Q3_1).source == "engine"  # + customer, supplier
    assert s_cs.execute(Q1_1).source == "cache-exact"
    before = service.cache.snapshot()
    service.insert("customer",
                   clone_rows(sdata.customer, 1, custkey=900001))
    after = service.cache.snapshot()
    # every entry touching customer fell (Q3.1's result and its
    # recorded positions); the Q1.1 entries were left alone
    victims = after["invalidations"] - before["invalidations"]
    assert victims > 0
    assert after["entries"] == before["entries"] - victims
    service.move()  # drain so reads leave the bypass path
    # the Q1.1 entry (no customer in scope) survived both the
    # invalidation and the move; the Q3.1 entry is gone
    assert s_cs.execute(Q1_1).source == "cache-exact"
    assert s_cs.execute(Q3_1).source == "engine"
    # the surviving entry's hit counter kept counting across the write
    assert service.stats.snapshot()["exact_hits"] >= 2


def test_invalidate_kills_subsumption_donors(served, sdata):
    service, _cs, _rs = served
    s_cs, _s_rs = _sessions(service)
    s_cs.execute(Q4_1)
    assert s_cs.execute(Q4_2).source == "cache-refilter"
    service.insert("part", clone_rows(sdata.part, 1, partkey=900001))
    service.move()
    # the Q4.1 donor entry touched ``part`` and was evicted, so Q4.2
    # can no longer be answered by re-filtering it
    assert s_cs.execute(Q4_2).source == "engine"


def test_cache_bypassed_while_delta_pending(served, sdata):
    service, cs, _rs = served
    s_cs, s_rs = _sessions(service)
    s_cs.execute(Q1_1)
    assert s_cs.execute(Q1_1).source == "cache-exact"
    deleted = service.delete("lineorder", delete_predicates())
    assert deleted > 0
    run_cs = s_cs.execute(Q1_1)
    run_rs = s_rs.execute(Q1_1)
    # merge-blind cache paths are all bypassed; both engines answer
    # from the snapshot merge and agree with the reference
    assert run_cs.source == "engine"
    assert run_rs.source == "engine"
    expected = reference_execute(cs._writes.effective_tables(),
                                 Q1_1).rows
    assert run_cs.result.rows == run_rs.result.rows == expected
    assert s_cs.execute(Q1_1).source == "engine"  # still bypassed
    moved = service.move()
    assert moved == deleted
    post = s_cs.execute(Q1_1)
    assert post.source == "engine"  # lineorder entries were evicted
    assert post.result.rows == expected
    assert s_cs.execute(Q1_1).source == "cache-exact"  # re-enabled


def test_execute_sql_dispatches_dml(served, sdata):
    service, cs, rs = served
    s_cs, _s_rs = _sessions(service)
    deleted = service.execute_sql(
        "DELETE FROM lineorder WHERE quantity < 3")
    assert deleted > 0
    assert cs.pending_writes() == rs.pending_writes() == deleted
    assert service.move() == deleted
    row = clone_rows(sdata.customer, 1, custkey=900002)[0]
    columns = ", ".join(row)
    values = ", ".join(
        str(v) if isinstance(v, int) else f"'{v}'" for v in row.values())
    assert service.execute_sql(
        f"INSERT INTO customer ({columns}) VALUES ({values})") == 1
    assert cs.pending_writes() == rs.pending_writes() == 1
    run = s_cs.execute_sql(
        "SELECT sum(lo.extendedprice * lo.discount) AS revenue "
        "FROM lineorder AS lo, date AS d "
        "WHERE lo.orderdate = d.datekey AND d.year = 1993 "
        "AND lo.discount BETWEEN 1 AND 3 AND lo.quantity < 25")
    assert run.source == "engine" and run.result.rows
    snap = service.stats.snapshot()
    assert snap["writes"] == 2 and snap["moves"] == 1
