"""Semantic-cache byte accounting and shard-scoped cache isolation.

The ``_bytes`` gauge drives eviction and the ``snapshot()`` numbers, so
the cache self-checks it against the sum of entry sizes after every
mutation.  These tests hammer the mutation paths — insert, replace,
discard, invalidate, evict — and assert the gauge can never go stale or
negative; plus the serve-layer rule that differently-sharded stacks
never share cache entries.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import ExecutionConfig
from repro.result import ResultSet
from repro.serve.semcache import (
    PredicateSignature,
    SemanticCache,
    ValueSet,
    normalize_query,
)
from repro.serve.service import QueryService
from repro.sql import parse_query
from repro.ssb.queries import ALL_QUERIES

SCOPE = ("cs", "tICL", "max", "", "sh1")


def _query(n: int):
    return parse_query(
        f"SELECT sum(lo.revenue) AS r FROM lineorder AS lo "
        f"WHERE lo.quantity < {n}")


def _result(rows: int) -> ResultSet:
    return ResultSet(["r"], [(i,) for i in range(rows)])


def _signature(n: int) -> PredicateSignature:
    return normalize_query(_query(n))


def _assert_consistent(cache: SemanticCache) -> None:
    snap = cache.snapshot()
    assert cache.current_bytes >= 0
    assert cache.current_bytes == snap["bytes"]
    # ground truth: the entries themselves
    assert cache.current_bytes == \
        sum(e.nbytes for e in cache._entries.values())


# --------------------------------------------------------------------- #
# the hammer: every mutation path, gauge checked after each step
# --------------------------------------------------------------------- #
def test_accounting_survives_mixed_mutations():
    cache = SemanticCache(budget_bytes=16 << 10, admit_seconds=0.0)
    for round_ in range(3):
        for n in range(1, 30):
            # vary sizes; repeats of the same n are replacements
            cache.admit_result(SCOPE, _query(n), _result(n % 7 + 1),
                               seconds=1.0, tables=frozenset({"lineorder"}))
            _assert_consistent(cache)
        cache.admit_positions(
            SCOPE, _signature(50),
            payload=np.arange(100, dtype=np.int64),
            key_sets={"date": np.arange(10, dtype=np.int64)},
            seconds=1.0, nbytes=800)
        _assert_consistent(cache)
        dropped = cache.invalidate("lineorder")
        assert dropped > 0
        _assert_consistent(cache)
    assert cache.current_bytes >= 0


def test_replacement_never_double_counts():
    cache = SemanticCache(budget_bytes=1 << 20, admit_seconds=0.0)
    big, small = _result(500), _result(1)
    for payload in (big, small, big, small):
        cache.admit_result(SCOPE, _query(5), payload, seconds=1.0,
                           tables=frozenset({"lineorder"}))
        _assert_consistent(cache)
        assert len(cache) == 1
    # the gauge tracks the *last* admitted payload, not the sum
    solo = SemanticCache(budget_bytes=1 << 20, admit_seconds=0.0)
    solo.admit_result(SCOPE, _query(5), small, seconds=1.0,
                      tables=frozenset({"lineorder"}))
    assert cache.current_bytes == solo.current_bytes


def test_eviction_keeps_gauge_within_budget():
    cache = SemanticCache(budget_bytes=4 << 10, admit_seconds=0.0)
    for n in range(1, 60):
        cache.admit_result(SCOPE, _query(n), _result(20), seconds=1.0,
                           tables=frozenset({"lineorder"}))
        _assert_consistent(cache)
    assert cache.counters.evictions > 0
    assert cache.current_bytes <= cache.budget_bytes


def test_discard_and_clear():
    cache = SemanticCache(budget_bytes=1 << 20, admit_seconds=0.0)
    cache.admit_result(SCOPE, _query(3), _result(3), seconds=1.0,
                       tables=frozenset({"lineorder"}))
    [key] = list(cache._entries)
    cache.discard(key)
    _assert_consistent(cache)
    assert cache.current_bytes == 0
    cache.discard(key)  # double discard is a no-op, not a drift
    _assert_consistent(cache)
    cache.admit_result(SCOPE, _query(4), _result(4), seconds=1.0,
                       tables=frozenset({"lineorder"}))
    assert cache.clear() == 1
    _assert_consistent(cache)
    assert cache.current_bytes == 0


def test_drift_is_caught_not_silent():
    """If the gauge ever disagrees with the entries, the very next
    mutation raises instead of silently mis-evicting."""
    cache = SemanticCache(budget_bytes=1 << 20, admit_seconds=0.0)
    cache.admit_result(SCOPE, _query(3), _result(3), seconds=1.0,
                       tables=frozenset({"lineorder"}))
    cache._bytes += 1  # simulated accounting bug
    with pytest.raises(AssertionError, match="drifted"):
        cache.invalidate("lineorder")


def test_empty_valueset_signature_admits_cleanly():
    # degenerate signature (empty constraint) must not upset accounting
    cache = SemanticCache(budget_bytes=1 << 20, admit_seconds=0.0)
    sig = PredicateSignature("lineorder",
                             (("lineorder", "quantity", ValueSet(())),))
    cache.admit_positions(SCOPE, sig, payload=np.array([], dtype=np.int64),
                          key_sets={}, seconds=1.0, nbytes=0)
    _assert_consistent(cache)


# --------------------------------------------------------------------- #
# shard-scoped isolation through the service
# --------------------------------------------------------------------- #
def test_shard_sets_do_not_share_cache_entries(cstore):
    """A result cached by an unsharded session must not serve a sharded
    session (and vice versa): the scopes differ in their ``shN`` field,
    so each shard set warms its own cache."""
    q11 = next(q for q in ALL_QUERIES if q.name == "Q1.1")
    with QueryService(cstore=cstore) as service:
        plain = service.session(engine="cs")
        sharded = service.session(
            engine="cs",
            config=replace(ExecutionConfig.baseline(), shards=4))
        first = plain.execute(q11)
        assert first.source == "engine"
        repeat = plain.execute(q11)
        assert repeat.source == "cache-exact"
        # same query, different shard scope: engine run, not a hit
        cross = sharded.execute(q11)
        assert cross.source == "engine"
        assert cross.result.rows == first.result.rows
        # ... and the sharded scope now has its own entry
        again = sharded.execute(q11)
        assert again.source == "cache-exact"
