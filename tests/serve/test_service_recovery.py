"""Service-level recovery and write robustness: ``service.recover()``
replays every engine under the DML lock, the auto tuple-mover policy
(``ExecutionConfig.move_threshold_rows``) drains the delta mid-serve,
and concurrent DML through the service serializes instead of raising
:class:`~repro.errors.WriteContentionError`."""

import threading

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import WriteContentionError
from repro.reference import execute as reference_execute
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.serve import QueryService, ServiceConfig
from repro.ssb.generator import generate
from repro.ssb.queries import query_by_name
from tests.write.dml import clone_rows, delete_predicates

SERVE_SF = 0.004

Q1_1 = query_by_name("Q1.1")


@pytest.fixture(scope="module")
def sdata():
    return generate(SERVE_SF)


@pytest.fixture
def served(sdata):
    cs = CStore(sdata)
    rs = SystemX(sdata, designs=[DesignKind.TRADITIONAL], writes=True)
    with QueryService(cs, rs, config=ServiceConfig(
            breakers=False)) as service:
        yield service, cs, rs


# -------------------------------------------------------------------- #
# service.recover(): every engine replayed, traced, and counted
# -------------------------------------------------------------------- #
def test_recover_replays_every_engine(served, sdata):
    service, cs, rs = served
    deleted = service.delete("lineorder", delete_predicates())
    assert deleted > 0
    expected = reference_execute(cs._writes.effective_tables(), Q1_1).rows
    reports = service.recover()
    assert sorted(reports) == ["cs", "rs"]
    for report in reports.values():
        assert report.recovered_batches == 1
        assert report.trace is not None
        assert report.trace.root.name == "recovery"
    assert cs.pending_writes() == rs.pending_writes() == deleted
    assert service.stats.snapshot()["recoveries"] == 1
    session = service.session("s", engine="cs",
                              config=ExecutionConfig(writes=True))
    assert session.execute(Q1_1).result.rows == expected


def test_recover_on_clean_service_is_noop(served):
    service, _cs, _rs = served
    reports = service.recover()
    assert all(report.clean for report in reports.values())
    assert service.stats.snapshot()["recoveries"] == 1


# -------------------------------------------------------------------- #
# the auto tuple-mover policy (ExecutionConfig.move_threshold_rows)
# -------------------------------------------------------------------- #
def test_auto_move_drains_delta_over_threshold(served, sdata):
    service, cs, rs = served
    inserted = service.insert("lineorder",
                              clone_rows(sdata.lineorder, 8))
    assert inserted == 8
    assert cs.pending_writes() == rs.pending_writes() == 8
    session = service.session(
        "auto", engine="cs",
        config=ExecutionConfig(writes=True, move_threshold_rows=4))
    expected = reference_execute(cs._writes.effective_tables(), Q1_1).rows
    run = session.execute(Q1_1)
    # the query itself tripped the mover: the delta drained before the
    # scan, and the rows are exactly the snapshot-merge answer
    assert cs.pending_writes() == 0
    assert run.result.rows == expected
    # below the threshold nothing moves
    service.insert("lineorder", clone_rows(sdata.lineorder, 2))
    session.execute(Q1_1)
    assert cs.pending_writes() == 2


def test_auto_move_rowstore_engine_kwarg(sdata):
    rs = SystemX(sdata, designs=[DesignKind.TRADITIONAL], writes=True,
                 move_threshold_rows=4)
    rs.insert("lineorder", clone_rows(sdata.lineorder, 8))
    assert rs.pending_writes() == 8
    expected = reference_execute(rs._writes.effective_tables(), Q1_1).rows
    run = rs.execute(Q1_1, DesignKind.TRADITIONAL)
    assert rs.pending_writes() == 0
    assert run.result.rows == expected


# -------------------------------------------------------------------- #
# concurrent DML through the service serializes (no typed contention)
# -------------------------------------------------------------------- #
def test_concurrent_service_dml_serializes(served, sdata):
    service, cs, rs = served
    batches = [clone_rows(sdata.lineorder, 5) for _ in range(6)]
    errors = []
    barrier = threading.Barrier(3)

    def writer(batch):
        barrier.wait()
        try:
            service.insert("lineorder", batch)
        except WriteContentionError as error:  # pragma: no cover
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(b,))
               for b in batches[:3]]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # the service's DML lock serialized the racers: no contention error
    # surfaced and every batch landed atomically on BOTH engines
    assert errors == []
    assert cs.pending_writes() == rs.pending_writes() == 15
    assert cs._writes.epoch == rs._writes.epoch == 3
    expected = reference_execute(cs._writes.effective_tables(), Q1_1).rows
    session = service.session("t", engine="cs",
                              config=ExecutionConfig(writes=True))
    assert session.execute(Q1_1).result.rows == expected
