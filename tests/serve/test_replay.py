"""Acceptance: cache-enabled double replay is row-identical to cold runs.

All 13 SSB queries are replayed twice through the service at several
(morsel workers x service concurrency) combinations, on both engines.
Every answer — engine run, exact hit, or subsumption re-filter — must be
row-identical to an uncached serial baseline, the second flight must
contain at least one exact hit AND at least one subsumption hit, and its
priced simulated seconds must be strictly lower than the first flight's.

Flight 1 goes out in two waves (the subsuming queries Q4.1/Q3.3 first)
so that even at concurrency 8 the subsumed queries find their subsumers
already cached; flight 2 is fully concurrent in a seeded shuffle.
"""

import random
import threading
from dataclasses import replace

import pytest

from repro.core.config import ExecutionConfig
from repro.rowstore.designs import DesignKind
from repro.serve import QueryService, ServiceConfig
from repro.ssb.queries import ALL_QUERIES

SUBSUMED = {"Q4.2", "Q4.3", "Q3.4"}


@pytest.fixture(scope="module")
def baselines(cstore, system_x):
    """Uncached serial baselines, one per engine."""
    return {
        "cs": {q.name: cstore.execute(q).result for q in ALL_QUERIES},
        "rs": {q.name: system_x.execute(
            q, DesignKind.TRADITIONAL).result for q in ALL_QUERIES},
    }


def _run_wave(session, queries):
    """Submit ``queries`` concurrently (one thread each); the service's
    admission limit decides how many actually overlap."""
    runs = {}
    errors = []
    lock = threading.Lock()

    def submit(query):
        try:
            run = session.execute(query)
            with lock:
                runs[query.name] = run
        except BaseException as error:
            with lock:
                errors.append((query.name, error))

    threads = [threading.Thread(target=submit, args=(q,))
               for q in queries]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return runs


@pytest.mark.parametrize("engine,workers,concurrency", [
    ("cs", 1, 1),
    ("cs", 4, 8),
    ("rs", 1, 1),
    ("rs", 1, 8),
])
def test_double_replay_row_identical_and_cheaper(
        engine, workers, concurrency, cstore, system_x, baselines):
    config = ServiceConfig(max_in_flight=concurrency,
                           cache_admit_seconds=0.0)
    with QueryService(cstore=cstore, system_x=system_x,
                      config=config) as service:
        session = service.session(
            engine=engine,
            config=replace(ExecutionConfig.baseline(), workers=workers)
            if engine == "cs" else None)

        wave_a = [q for q in ALL_QUERIES if q.name not in SUBSUMED]
        wave_b = [q for q in ALL_QUERIES if q.name in SUBSUMED]
        flight1 = _run_wave(session, wave_a)
        flight1.update(_run_wave(session, wave_b))

        shuffled = list(ALL_QUERIES)
        random.Random(20080609).shuffle(shuffled)
        flight2 = _run_wave(session, shuffled)

        expected = baselines[engine]
        for name, run in list(flight1.items()) + list(flight2.items()):
            assert run.result.same_rows(expected[name]), (
                f"{engine} w={workers} c={concurrency}: {name} "
                f"({run.source}) deviates from the uncached baseline")

        sources2 = {name: run.source for name, run in flight2.items()}
        assert any(s == "cache-exact" for s in sources2.values()), sources2
        assert any(s == "cache-refilter"
                   for s in sources2.values()), sources2

        cost1 = sum(run.seconds for run in flight1.values())
        cost2 = sum(run.seconds for run in flight2.values())
        assert cost2 < cost1, (
            f"flight 2 ({cost2:.4f}s) not cheaper than "
            f"flight 1 ({cost1:.4f}s)")


def test_replay_with_cache_disabled_matches_baselines(
        cstore, system_x, baselines):
    """The escape hatch: a cache-off service replays both flights as
    pure engine runs, still row-identical."""
    config = ServiceConfig(max_in_flight=4, cache=False)
    with QueryService(cstore=cstore, system_x=system_x,
                      config=config) as service:
        session = service.session(engine="cs")
        for _ in range(2):
            runs = _run_wave(session, ALL_QUERIES)
            for name, run in runs.items():
                assert run.source == "engine"
                assert run.result.same_rows(baselines["cs"][name])
        assert service.serve_stats()["service"]["exact_hits"] == 0
