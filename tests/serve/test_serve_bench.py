"""The closed-loop serving benchmark and its repro-serve-v1 artifact."""

import json

import pytest

from repro.bench.harness import Harness
from repro.bench.serve_bench import (
    SERVE_SCHEMA,
    load_serve_artifact,
    percentile,
    render_serve,
    run_serve_bench,
    write_serve_artifact,
)
from repro.errors import BenchmarkError


# -------------------------------------------------------------------- #
# percentile helper
# -------------------------------------------------------------------- #
def test_percentile_interpolates():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 100) == 4.0
    assert percentile(data, 50) == 2.5
    assert percentile([7.0], 99) == 7.0


def test_percentile_rejects_bad_input():
    with pytest.raises(BenchmarkError):
        percentile([], 50)
    with pytest.raises(BenchmarkError):
        percentile([1.0], 101)


# -------------------------------------------------------------------- #
# the benchmark itself (tiny scale, few clients)
# -------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def record():
    harness = Harness(scale_factor=0.004)
    return run_serve_bench(harness, clients=4, flights=2, engine="cs",
                           concurrency=4, cache=True)


def test_artifact_shape_and_ordering(record):
    assert record["schema"] == SERVE_SCHEMA
    assert record["queries_served"] == 4 * 2 * 13
    lat = record["latency_wall_ms"]
    assert lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]
    assert record["throughput_qps"] > 0
    assert len(record["flights_detail"]) == 2


def test_second_flight_is_cheaper_and_hits(record):
    first, second = record["flights_detail"]
    assert second["simulated_seconds"] < first["simulated_seconds"]
    assert second["exact_hits"] >= 1
    assert second["hit_rate"] >= first["hit_rate"]
    # across 4 clients x 13 queries, the flight replays everything
    assert first["queries"] == second["queries"] == 4 * 13


def test_artifact_round_trip(record, tmp_path):
    path = tmp_path / "serve.json"
    write_serve_artifact(str(path), record)
    loaded = load_serve_artifact(str(path))
    assert loaded == json.loads(json.dumps(record))  # JSON-stable
    assert loaded["schema"] == SERVE_SCHEMA


def test_load_rejects_foreign_artifacts(tmp_path):
    path = tmp_path / "not_serve.json"
    path.write_text(json.dumps({"schema": "repro-baseline-v1"}))
    with pytest.raises(BenchmarkError):
        load_serve_artifact(str(path))
    with pytest.raises(BenchmarkError):
        load_serve_artifact(str(tmp_path / "absent.json"))


def test_write_rejects_foreign_records(tmp_path):
    with pytest.raises(BenchmarkError):
        write_serve_artifact(str(tmp_path / "x.json"), {"schema": "nope"})


def test_render_serve_mentions_the_essentials(record):
    text = render_serve(record)
    assert "hit rate" in text
    assert "q/s" in text
    assert "flight 1" in text


def test_bench_cli_serve_mode(tmp_path, capsys):
    from repro.bench.__main__ import main

    out = tmp_path / "serve.json"
    assert main(["--serve", "--clients", "2", "--serve-flights", "2",
                 "--sf", "0.004", "--serve-concurrency", "2",
                 "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "serving benchmark" in printed
    loaded = load_serve_artifact(str(out))
    assert loaded["clients"] == 2
    assert loaded["queries_served"] == 2 * 2 * 13


def test_bench_cli_rejects_serve_with_figure_target():
    from repro.bench.__main__ import main

    with pytest.raises(SystemExit):
        main(["figure7", "--serve"])


def test_run_serve_bench_validates_arguments():
    harness = Harness(scale_factor=0.004)
    with pytest.raises(BenchmarkError):
        run_serve_bench(harness, clients=0)
    with pytest.raises(BenchmarkError):
        run_serve_bench(harness, engine="gpu")
