"""Service resilience: breakers, deadline propagation, shedding,
degraded serving.

The unit half drives the primitives (:class:`BreakerBoard`,
:class:`CancellationToken`, :class:`AdmissionController` shedding) on
fake clocks; the service half exercises the wired-up behavior against
the shared engines, healing every injected fault in ``finally`` so the
session-scoped fixtures stay clean for other tests.
"""

import dataclasses
import threading
import time

import pytest

from repro.core.config import ExecutionConfig
from repro.errors import (
    BreakerOpenError,
    CorruptPageError,
    QueryCancelledError,
    ShedError,
)
from repro.plan.logical import (
    AggExpr,
    ColumnRef,
    CompareOp,
    Comparison,
    StarQuery,
)
from repro.serve import QueryService, ServiceConfig
from repro.serve.resilience import (
    BreakerBoard,
    CancellationToken,
    CLOSED,
    HALF_OPEN,
    OPEN,
    ServiceClock,
)
from repro.serve.service import AdmissionController
from repro.simio.stats import PAPER_2008, QueryStats
from repro.ssb.queries import Q1_1, Q1_2, Q3_2

SCOPE = ("cs", "lineorder")
#: the scope the *service* keys breakers on — per shard set (sh1 here)
SERVICE_SCOPE = ("cs", "lineorder", 1)


def _quantity_files(cstore):
    return [name for name in cstore.disk.files()
            if name.startswith("lineorder.")
            and name.endswith(".quantity")]


# -------------------------------------------------------------------- #
# ServiceClock
# -------------------------------------------------------------------- #
def test_service_clock_advances_monotonically():
    clock = ServiceClock()
    assert clock.now() == 0.0
    assert clock.advance(0.25) == 0.25
    assert clock.advance(-1.0) == 0.25  # negative deltas are ignored
    assert clock.now() == 0.25


# -------------------------------------------------------------------- #
# CancellationToken
# -------------------------------------------------------------------- #
def test_token_explicit_cancel_is_typed():
    token = CancellationToken()
    token.check()  # nothing armed: a no-op
    token.cancel("operator said stop")
    with pytest.raises(QueryCancelledError) as info:
        token.check()
    assert info.value.reason == "operator said stop"


def test_token_wall_deadline():
    token = CancellationToken(deadline_at=time.monotonic() - 0.001)
    with pytest.raises(QueryCancelledError):
        token.check()


def test_token_sim_budget_prices_the_ledger():
    token = CancellationToken(sim_budget=1e-9, cost_model=PAPER_2008)
    token.check(QueryStats())  # nothing spent yet
    spent = QueryStats()
    spent.pages_read = 1000
    spent.bytes_read = 1000 * 32 * 1024
    with pytest.raises(QueryCancelledError):
        token.check(spent)


def test_token_sim_budget_requires_cost_model():
    with pytest.raises(ValueError):
        CancellationToken(sim_budget=1.0)


# -------------------------------------------------------------------- #
# BreakerBoard state machine (fake clock)
# -------------------------------------------------------------------- #
def test_breaker_opens_after_threshold_consecutive_failures():
    board = BreakerBoard(threshold=3, cooldown=1.0)
    assert board.admit(SCOPE, now=0.0) == CLOSED
    board.record_failure(SCOPE, now=0.0)
    board.record_failure(SCOPE, now=0.0)
    assert board.state_of(SCOPE) == CLOSED
    board.record_failure(SCOPE, now=0.0)
    assert board.state_of(SCOPE) == OPEN
    assert board.admit(SCOPE, now=0.5) == OPEN  # still cooling


def test_breaker_success_resets_the_failure_count():
    board = BreakerBoard(threshold=2, cooldown=1.0)
    board.record_failure(SCOPE, now=0.0)
    board.record_success(SCOPE)
    board.record_failure(SCOPE, now=0.0)
    assert board.state_of(SCOPE) == CLOSED  # never two in a row


def test_breaker_half_open_single_trial_and_close():
    board = BreakerBoard(threshold=1, cooldown=1.0)
    board.record_failure(SCOPE, now=0.0)
    assert board.admit(SCOPE, now=2.0) == HALF_OPEN  # holds the slot
    assert board.admit(SCOPE, now=2.0) == OPEN       # slot taken
    board.record_success(SCOPE)
    assert board.state_of(SCOPE) == CLOSED
    assert board.admit(SCOPE, now=2.0) == CLOSED


def test_breaker_failed_trial_reopens_with_fresh_cooldown():
    board = BreakerBoard(threshold=1, cooldown=1.0)
    board.record_failure(SCOPE, now=0.0)
    assert board.admit(SCOPE, now=1.5) == HALF_OPEN
    board.record_failure(SCOPE, now=1.5)
    assert board.state_of(SCOPE) == OPEN
    assert board.admit(SCOPE, now=2.0) == OPEN       # cooldown restarted
    assert board.admit(SCOPE, now=2.5) == HALF_OPEN


def test_breaker_abandoned_trial_frees_the_slot():
    board = BreakerBoard(threshold=1, cooldown=1.0)
    board.record_failure(SCOPE, now=0.0)
    assert board.admit(SCOPE, now=2.0) == HALF_OPEN
    board.abandon_trial(SCOPE)  # e.g. served from the result cache
    assert board.admit(SCOPE, now=2.0) == HALF_OPEN


def test_breaker_counters_and_states_rendering():
    counts = {}
    board = BreakerBoard(threshold=1, cooldown=1.0,
                         counter=lambda **kw: counts.update(
                             {k: counts.get(k, 0) + v
                              for k, v in kw.items()}))
    board.record_failure(SCOPE, now=0.0)
    board.admit(SCOPE, now=2.0)
    board.record_success(SCOPE)
    assert counts == {"breaker_opens": 1, "breaker_half_opens": 1,
                      "breaker_closes": 1}
    assert board.states() == {"cs/lineorder": CLOSED}
    assert board.open_scopes() == []


# -------------------------------------------------------------------- #
# load shedding (unit level — no engines involved)
# -------------------------------------------------------------------- #
def test_brownout_sheds_low_priority_but_admits_high():
    ctl = AdmissionController(max_in_flight=2, queue_limit=8,
                              queue_timeout=1.0, shed_threshold=0.5)
    ctl.note_latency(2.0)
    ctl.acquire(priority=0)  # idle service: nothing ahead, never shed
    # now estimated wait = 2.0 * 1 / 2 = 1.0 > 0.5
    with pytest.raises(ShedError):
        ctl.acquire(priority=0)
    ctl.acquire(priority=1)  # high priority rides out the brownout
    ctl.release()
    ctl.release()


def test_no_shedding_when_threshold_unset_or_idle():
    ctl = AdmissionController(max_in_flight=1, queue_limit=8,
                              queue_timeout=1.0, shed_threshold=None)
    ctl.note_latency(100.0)
    ctl.acquire(priority=0)  # threshold off: EWMA alone never sheds
    ctl.release()
    shedding = AdmissionController(max_in_flight=1, queue_limit=8,
                                   queue_timeout=1.0, shed_threshold=0.1)
    shedding.acquire(priority=0)  # no latency observed yet: estimate 0
    shedding.release()


def test_latency_ewma_smooths():
    ctl = AdmissionController(max_in_flight=1, queue_limit=8,
                              queue_timeout=1.0)
    ctl.note_latency(1.0)
    assert ctl.latency_ewma == 1.0
    ctl.note_latency(0.0)
    assert 0.0 < ctl.latency_ewma < 1.0


def test_full_queue_displaces_the_lowest_priority_waiter():
    ctl = AdmissionController(max_in_flight=1, queue_limit=1,
                              queue_timeout=5.0)
    ctl.acquire()
    results = {}

    def low_client():
        try:
            ctl.acquire(priority=0)
            results["low"] = "admitted"
            ctl.release()
        except ShedError:
            results["low"] = "shed"

    low = threading.Thread(target=low_client)
    low.start()
    deadline = time.monotonic() + 5.0
    while ctl.queued < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    assert ctl.queued == 1  # the queue is now full

    def high_client():
        ctl.acquire(priority=5)
        results["high"] = "admitted"
        ctl.release()

    high = threading.Thread(target=high_client)
    high.start()
    low.join(timeout=5.0)
    assert results.get("low") == "shed"
    ctl.release()
    high.join(timeout=5.0)
    assert results.get("high") == "admitted"


def test_full_queue_refuses_equal_priority_instead_of_shedding():
    ctl = AdmissionController(max_in_flight=1, queue_limit=1,
                              queue_timeout=5.0)
    ctl.acquire()
    waiter_error = []

    def waiter():
        try:
            ctl.acquire(priority=0)
            ctl.release()
        except Exception as error:  # pragma: no cover
            waiter_error.append(error)

    thread = threading.Thread(target=waiter)
    thread.start()
    deadline = time.monotonic() + 5.0
    while ctl.queued < 1 and time.monotonic() < deadline:
        time.sleep(0.01)
    from repro.errors import AdmissionError
    with pytest.raises(AdmissionError):
        ctl.acquire(priority=0)  # same priority: no displacement
    ctl.release()
    thread.join(timeout=5.0)
    assert not waiter_error


# -------------------------------------------------------------------- #
# deadline propagation into engine execution
# -------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", (1, 4))
def test_sim_deadline_cancels_mid_execution(cstore, system_x, workers):
    config = dataclasses.replace(ExecutionConfig.baseline(),
                                 workers=workers)
    with QueryService(cstore=cstore, system_x=system_x) as service:
        session = service.session(engine="cs", config=config)
        with pytest.raises(QueryCancelledError) as info:
            session.execute(Q1_1, cached=False, sim_deadline=1e-9)
        assert "budget" in info.value.reason
        snap = service.stats.snapshot()
        assert snap["cancelled"] == 1
        assert snap["failed"] == 1
        # the partial ledger still verifies against its trace
        error = info.value
        assert error.trace is not None
        error.trace.verify(error.stats)
        assert error.stats.pages_read > 0  # it really started
        # the engine slot is clean: the next query runs normally
        ok = session.execute(Q1_1, cached=False)
        assert ok.result.rows
        assert cstore.disk.cancellation is None


def test_sim_deadline_cancels_row_store_too(cstore, system_x):
    with QueryService(cstore=cstore, system_x=system_x) as service:
        session = service.session(engine="rs")
        with pytest.raises(QueryCancelledError):
            session.execute(Q1_1, cached=False, sim_deadline=1e-9)
        ok = session.execute(Q1_1, cached=False)
        assert ok.result.rows
        assert system_x.disk.cancellation is None


def test_generous_sim_deadline_changes_nothing(cstore, system_x):
    with QueryService(cstore=cstore, system_x=system_x) as service:
        session = service.session(engine="cs")
        run = session.execute(Q1_1, cached=False, sim_deadline=1e9)
        direct = cstore.execute(Q1_1)
        assert run.stats.snapshot() == direct.stats.snapshot()
        assert run.result.same_rows(direct.result)


# -------------------------------------------------------------------- #
# breakers + degraded serving through the service
# -------------------------------------------------------------------- #
def test_breaker_opens_and_serves_exact_hits_degraded(cstore, system_x):
    config = ServiceConfig(cache_admit_seconds=0.0, breaker_threshold=3)
    disk = cstore.disk
    victims = _quantity_files(cstore)
    assert victims
    with QueryService(cstore=cstore, system_x=system_x,
                      config=config) as service:
        session = service.session(engine="cs")
        healthy = session.execute(Q1_1)  # seeds the exact result entry
        try:
            for name in victims:
                disk.quarantine(name, 0)
            for _ in range(3):
                with pytest.raises(CorruptPageError):
                    session.execute(Q1_2, cached=False)
            assert service.breakers.state_of(SERVICE_SCOPE) == OPEN
            snap = service.stats.snapshot()
            assert snap["breaker_opens"] == 1

            # the cached result serves, stamped degraded, engine untouched
            run = session.execute(Q1_1)
            assert run.degraded
            assert run.source == "cache-exact"
            names = run.trace.span_names()
            assert "breaker-check" in names
            assert "degraded-hit" in names
            run.trace.verify(run.stats)
            assert run.result.same_rows(healthy.result)
            assert service.stats.snapshot()["degraded_hits"] == 1

            # no honest cache answer: a typed refusal, engine untouched
            with pytest.raises(BreakerOpenError) as info:
                session.execute(Q3_2)
            assert info.value.scope == SERVICE_SCOPE
            assert service.stats.snapshot()["breaker_rejections"] == 1
        finally:
            for name in victims:
                disk.unquarantine(name, 0)


def test_degraded_subsumption_serves_from_proven_entry(cstore, system_x):
    """While the breaker is open, a *symbolically proven* subsumed entry
    still serves (re-filtered from clean pages) — key-set guesses don't."""
    def fact_query(name, predicates):
        return StarQuery(
            name=name, fact_table="lineorder", joins={},
            predicates=tuple(predicates), group_by=(),
            aggregates=(AggExpr("sum",
                                ColumnRef("lineorder", "extendedprice"),
                                "revenue"),))

    orderdate = ColumnRef("lineorder", "orderdate")
    discount = ColumnRef("lineorder", "discount")
    broad = fact_query("rsl-broad", [
        Comparison(orderdate, CompareOp.LE, 19980101)])
    narrow = fact_query("rsl-narrow", [
        Comparison(orderdate, CompareOp.LE, 19940101),
        Comparison(discount, CompareOp.GE, 5)])

    config = ServiceConfig(cache_admit_seconds=0.0, breaker_threshold=2)
    disk = cstore.disk
    victims = _quantity_files(cstore)
    with QueryService(cstore=cstore, system_x=system_x,
                      config=config) as service:
        session = service.session(engine="cs")
        session.execute(broad)  # seeds the position entry
        expected = cstore.execute(narrow).result
        try:
            for name in victims:
                disk.quarantine(name, 0)
            for _ in range(2):
                with pytest.raises(CorruptPageError):
                    session.execute(Q1_2, cached=False)
            assert service.breakers.state_of(SERVICE_SCOPE) == OPEN
            run = session.execute(narrow)
            assert run.degraded
            assert run.source == "cache-refilter"
            assert run.result.same_rows(expected)
            run.trace.verify(run.stats)
        finally:
            for name in victims:
                disk.unquarantine(name, 0)


def test_breaker_half_open_trial_recovers_after_heal(cstore, system_x):
    config = ServiceConfig(cache=False, breaker_threshold=2,
                           breaker_cooldown=0.05)
    disk = cstore.disk
    victims = _quantity_files(cstore)
    with QueryService(cstore=cstore, system_x=system_x,
                      config=config) as service:
        session = service.session(engine="cs")
        try:
            for name in victims:
                disk.quarantine(name, 0)
            for _ in range(2):
                with pytest.raises(CorruptPageError):
                    session.execute(Q1_1)
            assert service.breakers.state_of(SERVICE_SCOPE) == OPEN
            # cache off and still cooling: a typed refusal
            with pytest.raises(BreakerOpenError):
                session.execute(Q1_1)
        finally:
            for name in victims:
                disk.unquarantine(name, 0)
        # pages healed; once the (simulated) cooldown passes, the next
        # query becomes the half-open trial and closes the breaker
        service.clock.advance(1.0)
        run = session.execute(Q1_1)
        assert run.source == "engine"
        assert run.result.rows
        assert service.breakers.state_of(SERVICE_SCOPE) == CLOSED
        snap = service.stats.snapshot()
        assert snap["breaker_half_opens"] == 1
        assert snap["breaker_closes"] == 1


def test_resilience_counters_stay_zero_on_healthy_runs(cstore, system_x):
    with QueryService(cstore=cstore, system_x=system_x) as service:
        for engine in ("cs", "rs"):
            session = service.session(engine=engine)
            session.execute(Q1_1, cached=False)
        snap = service.stats.snapshot()
        for counter in ("shed", "cancelled", "degraded_hits",
                        "breaker_opens", "breaker_half_opens",
                        "breaker_closes", "breaker_rejections"):
            assert snap[counter] == 0, counter
        resilience = service.serve_stats()["resilience"]
        assert set(resilience["breakers"].values()) == {CLOSED}


def test_breakers_off_preserves_plain_failure_semantics(cstore, system_x):
    config = ServiceConfig(breakers=False, degraded_serving=False)
    disk = cstore.disk
    victims = _quantity_files(cstore)
    with QueryService(cstore=cstore, system_x=system_x,
                      config=config) as service:
        assert service.breakers is None
        session = service.session(engine="cs")
        try:
            for name in victims:
                disk.quarantine(name, 0)
            for _ in range(4):  # would have tripped a breaker
                with pytest.raises(CorruptPageError):
                    session.execute(Q1_1, cached=False)
        finally:
            for name in victims:
                disk.unquarantine(name, 0)
        ok = session.execute(Q1_1, cached=False)
        assert ok.result.rows
        assert service.serve_stats()["resilience"]["breakers"] == {}
