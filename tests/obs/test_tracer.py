"""Tracer unit tests: span stacking, attribution, invariants, artifacts."""

import pytest

from repro.errors import TraceInvariantError
from repro.obs import (
    Span,
    TRACE_SCHEMA,
    Trace,
    Tracer,
    render_trace,
    span_context,
    trace_record,
)
from repro.simio.stats import PAPER_2008, QueryStats


def test_span_tree_sums_to_flat():
    stats = QueryStats()
    tracer = Tracer(stats)
    stats.iterator_calls += 5  # root self work, outside any span
    with tracer.span("a"):
        stats.hash_probes += 10
        with tracer.span("a.1"):
            stats.hash_probes += 7
    with tracer.span("b"):
        stats.agg_updates += 3
    trace = tracer.finish(stats)
    assert trace.span_names() == ["query", "a", "a.1", "b"]
    assert trace.root.stats.iterator_calls == 5
    assert trace.root.stats.hash_probes == 17
    a = trace.find("a")
    assert a.stats.hash_probes == 17  # inclusive of a.1
    assert a.self_stats().hash_probes == 10  # exclusive
    assert trace.find("a.1").stats.hash_probes == 7
    assert trace.find("b").stats.agg_updates == 3
    # self ledgers over the whole tree sum exactly to the flat ledger
    total = QueryStats()
    for span in trace.root.walk():
        total.merge(span.self_stats())
    assert total.snapshot() == stats.snapshot()


def test_finish_is_idempotent():
    stats = QueryStats()
    tracer = Tracer(stats)
    with tracer.span("a"):
        stats.seeks += 1
    assert tracer.finish(stats) is tracer.finish(stats)


def test_finish_with_open_span_raises():
    stats = QueryStats()
    tracer = Tracer(stats)
    context = tracer.span("left-open")
    context.__enter__()
    with pytest.raises(TraceInvariantError, match="left-open"):
        tracer.finish(stats)


def test_finish_rejects_foreign_flat_ledger():
    stats = QueryStats()
    tracer = Tracer(stats)
    stats.seeks += 1
    other = QueryStats()  # does not match what the tracer observed
    with pytest.raises(TraceInvariantError, match="seeks"):
        tracer.finish(other)


def test_verify_rejects_overattributed_children():
    # a child claiming work its parent never observed must not verify
    child_stats = QueryStats()
    child_stats.hash_probes = 5
    child = Span("child", child_stats, PAPER_2008.cost(child_stats))
    root_stats = QueryStats()
    root = Span("query", root_stats, PAPER_2008.cost(root_stats), [child])
    with pytest.raises(TraceInvariantError, match="over-attributed"):
        Trace(root).verify(QueryStats())


def test_leaf_spans_record_in_order():
    stats = QueryStats()
    tracer = Tracer(stats)
    with tracer.span("scan"):
        for morsel_no in range(3):
            part = QueryStats()
            part.pages_read = morsel_no + 1
            stats.merge(part)
            tracer.leaf(f"morsel:{morsel_no}", part)
    trace = tracer.finish(stats)
    scan = trace.find("scan")
    assert [s.name for s in scan.children] == [
        "morsel:0", "morsel:1", "morsel:2"]
    assert scan.stats.pages_read == 6
    assert scan.self_stats().pages_read == 0


def test_span_context_none_is_noop():
    with span_context(None, "anything") as value:
        assert value is None


def test_exceptions_still_close_spans():
    stats = QueryStats()
    tracer = Tracer(stats)
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            stats.seeks += 2
            raise RuntimeError("mid-span failure")
    trace = tracer.finish(stats)
    assert trace.find("boom").stats.seeks == 2


def test_render_trace_lines():
    stats = QueryStats()
    tracer = Tracer(stats)
    with tracer.span("aggregate"):
        stats.agg_updates += 1000
    text = render_trace(tracer.finish(stats))
    assert "trace (simulated seconds)" in text
    assert "aggregate" in text
    assert "io " in text and "cpu " in text


def test_trace_record_schema_and_key_order():
    stats = QueryStats()
    tracer = Tracer(stats)
    with tracer.span("sort"):
        stats.sort_compares += 10
    trace = tracer.finish(stats)
    record = trace_record(trace, figure="figure7", series="tICL",
                          query="Q2.1", engine="colstore",
                          scale_factor=0.01, workers=4)
    assert list(record) == [
        "schema", "figure", "series", "query", "engine", "scale_factor",
        "workers", "total_seconds", "io_seconds", "cpu_seconds", "spans",
    ]
    assert record["schema"] == TRACE_SCHEMA
    spans = record["spans"]
    assert list(spans) == ["name", "total_seconds", "io_seconds",
                           "cpu_seconds", "counters", "children"]
    assert spans["children"][0]["name"] == "sort"
    assert spans["children"][0]["counters"] == {"sort_compares": 10}
    # nonzero-only counters, sorted by name
    assert list(spans["counters"]) == sorted(spans["counters"])
