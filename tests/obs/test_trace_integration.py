"""End-to-end tracing: all 13 SSBM queries, both engines, the span
invariant, and the passivity guarantee (traced == untraced ledgers)."""

import dataclasses

import pytest

from repro.core.config import CONFIG_LADDER, ExecutionConfig
from repro.rowstore.designs import DesignKind
from repro.simio.stats import QueryStats
from repro.ssb.queries import ALL_QUERIES, query_by_name


def _assert_invariant(run):
    trace = run.trace
    assert trace is not None
    # independent re-check of what Trace.verify enforced at finish():
    # the self ledgers of all spans sum exactly to the flat ledger
    total = QueryStats()
    for span in trace.root.walk():
        total.merge(span.self_stats())
    assert total.snapshot() == run.stats.snapshot()
    # priced root equals the run's own priced cost
    assert trace.root.cost.total_seconds == pytest.approx(
        run.cost.total_seconds)


@pytest.mark.parametrize("workers", [1, 4])
def test_colstore_all_queries_span_invariant(cstore, workers):
    config = dataclasses.replace(ExecutionConfig.baseline(),
                                 workers=workers)
    for query in ALL_QUERIES:
        run = cstore.execute(query, config)
        _assert_invariant(run)
        names = {s.name for s in run.trace.root.children}
        assert {"phase1:dimension-filter", "phase2:fact-scan",
                "aggregate", "sort"} <= names


def test_colstore_parallel_run_has_morsel_leaves(cstore):
    config = dataclasses.replace(ExecutionConfig.baseline(), workers=4)
    run = cstore.execute(query_by_name("Q2.1"), config)
    morsels = [n for n in run.trace.span_names()
               if n.startswith("morsel:")]
    assert morsels, "parallel runs should record per-morsel leaf spans"
    # deterministic: each parallel operation's leaves appear in morsel
    # order under their parent span; a span running several parallel
    # operations gets several runs, each restarting at morsel:0
    for span in run.trace.root.walk():
        numbers = [int(c.name.split(":")[1]) for c in span.children
                   if c.name.startswith("morsel:")]
        for previous, current in zip([-1] + numbers, numbers):
            assert current == 0 or current == previous + 1


def test_colstore_early_materialization_spans(cstore):
    run = cstore.execute(query_by_name("Q2.1"),
                         ExecutionConfig.row_store_like())
    _assert_invariant(run)
    names = {s.name for s in run.trace.root.children}
    assert {"scan:fact-columns", "phase1:dimension-filter",
            "row-pipeline", "aggregate", "sort"} <= names


def test_colstore_ladder_traces(cstore):
    for config in CONFIG_LADDER:
        run = cstore.execute(query_by_name("Q3.2"), config)
        _assert_invariant(run)


def test_row_mv_traces(cstore):
    run = cstore.execute_row_mv(query_by_name("Q1.1"))
    _assert_invariant(run)
    names = {s.name for s in run.trace.root.children}
    assert "scan:row-mv" in names


def test_rowstore_all_queries_all_designs_span_invariant(system_x):
    for design in DesignKind:
        for query in ALL_QUERIES:
            run = system_x.execute(query, design)
            _assert_invariant(run)
            names = {s.name for s in run.trace.root.children}
            assert {"dimension-filter", "pipeline:scan-join-aggregate",
                    "sort"} <= names


def test_rowstore_design_specific_spans(system_x):
    q = query_by_name("Q3.1")
    by_design = {
        DesignKind.TRADITIONAL_BITMAP: "fact-scan:bitmap",
        DesignKind.VERTICAL_PARTITIONING: "fact-scan:vertical-partitions",
        DesignKind.INDEX_ONLY: "fact-scan:index-rid-joins",
    }
    for design, expected in by_design.items():
        run = system_x.execute(q, design)
        assert expected in run.trace.span_names()


def test_colstore_tracing_is_passive(cstore):
    """A planner run with no tracer charges byte-for-byte the same flat
    ledger as the (always traced) engine execution."""
    from repro.colstore.planner import ColumnPlanner

    for workers in (1, 4):
        config = dataclasses.replace(ExecutionConfig.baseline(),
                                     workers=workers)
        query = query_by_name("Q4.2")
        traced = cstore.execute(query, config).stats.snapshot()
        untraced = QueryStats()
        cstore.disk.stats = untraced
        cstore.pool.clear()
        ColumnPlanner(cstore._context(), config).run(query)
        assert untraced.snapshot() == traced


def test_rowstore_tracing_is_passive(system_x):
    from repro.rowstore.operators import SpillAccountant
    from repro.rowstore.planner import RowPlanner

    query = query_by_name("Q4.2")
    design = DesignKind.TRADITIONAL
    traced = system_x.execute(query, design).stats.snapshot()
    untraced = QueryStats()
    system_x.disk.stats = untraced
    system_x.pool.clear()
    spill = SpillAccountant(system_x.disk, system_x.join_memory_bytes)
    RowPlanner(system_x.pool, system_x.artifacts, system_x.data, spill,
               statistics=system_x.statistics).run(query, design)
    assert untraced.snapshot() == traced


def test_executions_are_deterministic(cstore, system_x):
    """Same query, same engine, same config -> identical ledgers and
    identical span trees (names and per-span snapshots)."""
    query = query_by_name("Q2.3")
    runs = [cstore.execute(query, ExecutionConfig.baseline())
            for _ in range(2)]
    assert runs[0].stats.snapshot() == runs[1].stats.snapshot()
    first, second = (list(r.trace.root.walk()) for r in runs)
    assert [s.name for s in first] == [s.name for s in second]
    for a, b in zip(first, second):
        assert a.stats.snapshot() == b.stats.snapshot()
