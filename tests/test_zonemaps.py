"""Zone-map synopses: pruning must be invisible except to the I/O meter.

Three contracts:

* **Invisibility** — every SSB query, compression on and off, serial and
  morsel-parallel, returns identical rows and an identical flat ledger
  modulo the two skip counters; zone maps never read *more* pages; the
  span tree still sums exactly to the flat ledger.
* **Fallback** — a corrupted sidecar produces a typed
  :class:`SynopsisWarning` and a full scan with unchanged results, never
  a wrongly skipped block.
* **Scrub** — a corrupt sidecar page is repaired byte-identically by
  rebuilding the synopsis from the (verified) data pages.
"""

import dataclasses
import warnings

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.scrub import scrub_store
from repro.simio.faults import FaultInjector, FaultPolicy
from repro.ssb.queries import ALL_QUERIES, query_by_name
from repro.storage.colfile import CompressionLevel
from repro.synopsis import (
    SynopsisWarning,
    load_column_synopsis,
    sidecar_name,
)

SKIP_COUNTERS = ("synopsis_probes", "blocks_skipped")

#: the serial == parallel replay contract (tests/colstore/test_parallel
#: .py) plus the new skip counters: workers prune per-window, but the
#: sums must equal the serial run exactly
_PARALLEL_FIELDS = (
    "pages_read", "bytes_read", "seeks", "buffer_hits",
    "stripe0_bytes", "stripe1_bytes", "stripe2_bytes", "stripe3_bytes",
    "stripe0_seeks", "stripe1_seeks", "stripe2_seeks", "stripe3_seeks",
) + SKIP_COUNTERS


def _ledger_mod_skips(stats):
    flat = dataclasses.asdict(stats)
    for name in SKIP_COUNTERS:
        flat.pop(name)
    return flat


def _configs():
    for label in ("tICL", "tIcL"):
        base = ExecutionConfig.from_label(label)
        yield base, dataclasses.replace(base, zone_maps=True)


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.name)
def test_pruning_is_invisible(cstore, query):
    for off_config, on_config in _configs():
        off = cstore.execute(query, off_config)
        on = cstore.execute(query, on_config)
        assert on.result.same_rows(off.result), off_config.label
        assert on.stats.pages_read <= off.stats.pages_read
        if on.stats.blocks_skipped == 0:
            # pruning that skips nothing must be charge-free: the only
            # ledger drift allowed is the probe counter itself
            assert _ledger_mod_skips(on.stats) == \
                _ledger_mod_skips(off.stats)
        # off-mode must not even know the synopsis layer exists
        assert off.stats.synopsis_probes == 0
        assert off.stats.blocks_skipped == 0
        on.trace.verify(on.stats)

        parallel = cstore.execute(
            query, dataclasses.replace(on_config, workers=4))
        assert parallel.result.same_rows(on.result)
        for field in _PARALLEL_FIELDS:
            assert getattr(parallel.stats, field) == \
                getattr(on.stats, field), field
        parallel.trace.verify(parallel.stats)


@pytest.mark.parametrize("design",
                         [DesignKind.TRADITIONAL,
                          DesignKind.VERTICAL_PARTITIONING],
                         ids=lambda d: d.value)
def test_rowstore_pruning_is_invisible(ssb_data, design):
    off_engine = SystemX(ssb_data, designs=[design])
    on_engine = SystemX(ssb_data, designs=[design], zone_maps=True)
    for name in ("Q1.1", "Q1.2", "Q2.1", "Q3.1", "Q4.1"):
        query = query_by_name(name)
        off = off_engine.execute(query, design)
        on = on_engine.execute(query, design)
        assert on.result.same_rows(off.result), name
        assert on.stats.pages_read <= off.stats.pages_read
        if on.stats.blocks_skipped == 0:
            assert _ledger_mod_skips(on.stats) == \
                _ledger_mod_skips(off.stats)
        assert off.stats.synopsis_probes == 0
        on.trace.verify(on.stats)


def test_colstore_skips_blocks_on_selective_scans(cstore):
    """Q1.x at compression off must win strictly, not vacuously."""
    config = dataclasses.replace(ExecutionConfig.from_label("tIcL"),
                                 zone_maps=True)
    for name in ("Q1.1", "Q1.2", "Q1.3"):
        query = query_by_name(name)
        off = cstore.execute(query, ExecutionConfig.from_label("tIcL"))
        on = cstore.execute(query, config)
        assert on.stats.blocks_skipped > 0, name
        assert on.stats.pages_read < off.stats.pages_read, name


def test_corrupt_sidecar_falls_back_to_full_scan(ssb_data):
    store = CStore(ssb_data)
    query = query_by_name("Q1.1")
    off_config = ExecutionConfig.from_label("tIcL")
    on_config = dataclasses.replace(off_config, zone_maps=True)
    baseline = store.execute(query, off_config)

    log = FaultInjector(5, [FaultPolicy(file_glob="*.zm",
                                        bitflip_rate=1.0)]) \
        .install(store.disk)
    assert log, "no sidecar pages were corrupted"
    with pytest.warns(SynopsisWarning):
        degraded = store.execute(query, on_config)
    # full-scan fallback: identical rows AND an identical ledger — no
    # probes are charged when the synopsis is unusable
    assert degraded.result.same_rows(baseline.result)
    assert dataclasses.asdict(degraded.stats) == \
        dataclasses.asdict(baseline.stats)


def test_corrupt_heap_sidecar_falls_back_to_full_scan(ssb_data):
    engine = SystemX(ssb_data, designs=[DesignKind.TRADITIONAL],
                     zone_maps=True)
    clean = SystemX(ssb_data, designs=[DesignKind.TRADITIONAL])
    query = query_by_name("Q1.1")
    baseline = clean.execute(query, DesignKind.TRADITIONAL)

    log = FaultInjector(6, [FaultPolicy(file_glob="*.zm",
                                        bitflip_rate=1.0)]) \
        .install(engine.disk)
    assert log, "no sidecar pages were corrupted"
    with pytest.warns(SynopsisWarning):
        degraded = engine.execute(query, DesignKind.TRADITIONAL)
    assert degraded.result.same_rows(baseline.result)
    assert dataclasses.asdict(degraded.stats) == \
        dataclasses.asdict(baseline.stats)


def test_scrub_repairs_corrupt_sidecar(ssb_data):
    store = CStore(ssb_data)
    log = FaultInjector(7, [FaultPolicy(file_glob="*.zm",
                                        bitflip_rate=0.5)]) \
        .install(store.disk)
    assert log, "no sidecar pages were corrupted"
    report = scrub_store(store)
    assert report.repaired_pages >= len(log)
    assert scrub_store(store, repair=False).clean

    # the repaired synopsis decodes and prunes again, without warnings
    query = query_by_name("Q1.1")
    config = dataclasses.replace(ExecutionConfig.from_label("tIcL"),
                                 zone_maps=True)
    with warnings.catch_warnings():
        warnings.simplefilter("error", SynopsisWarning)
        run = store.execute(query, config)
    assert run.stats.blocks_skipped > 0


def test_sidecars_exist_for_fact_columns(cstore):
    disk = cstore.disk
    sidecars = [n for n in disk.files() if n.endswith(".zm")]
    assert sidecars, "no synopsis sidecars were written at load time"
    # every multi-block column file of the uncompressed lineorder
    # projection has a sidecar that decodes cleanly; single-block files
    # get none (the sidecar page would cost more than it can save)
    proj = cstore.projection("lineorder", CompressionLevel.NONE)
    for column in proj.column_names:
        colfile = proj.column_file(column)
        multi_block = len(disk.file(colfile.name).pages) >= 2
        assert disk.exists(sidecar_name(colfile.name)) == multi_block, \
            column
        if multi_block:
            assert load_column_synopsis(colfile) is not None, column
