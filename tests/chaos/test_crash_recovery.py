"""The full crash/recovery chaos matrix: every kill point × both
engines, recovered state verified acked-present / unacked-absent with
all 13 SSB queries row-identical to a never-crashed reference engine at
the same epoch (delegates to the durability verifier's checks)."""

import pytest

from repro.simio.faults import CRASH_POINTS
from repro.ssb.generator import generate
from repro.write.verify import verify_clean_start, verify_crash_point

pytestmark = pytest.mark.chaos

CHAOS_SF = 0.004


@pytest.fixture(scope="module")
def chaos_data():
    return generate(CHAOS_SF, seed=7)


@pytest.mark.parametrize("kind", ["cs", "rs"])
@pytest.mark.parametrize("point", CRASH_POINTS)
def test_crash_point_exactly_once(chaos_data, kind, point):
    problems = verify_crash_point(kind, point, chaos_data)
    assert problems == []


@pytest.mark.parametrize("kind", ["cs", "rs"])
def test_clean_start_counters_stay_zero(chaos_data, kind):
    assert verify_clean_start(kind, chaos_data) == []
