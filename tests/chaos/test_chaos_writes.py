"""Chaos on the write path: fault-injected journal appends and
tuple-move page writes either retry to success or fail typed — and a
failed write leaves the read-optimized store serving exactly what it
served before."""

from dataclasses import replace

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import WriteFaultError
from repro.reference import execute as reference_execute
from repro.simio.faults import FaultInjector, FaultPolicy
from repro.ssb.generator import generate
from repro.ssb.queries import query_by_name
from tests.write.dml import clone_rows, write_mix

pytestmark = pytest.mark.chaos

CHAOS_SF = 0.004

Q1_1 = query_by_name("Q1.1")
WRITE_CONFIG = replace(ExecutionConfig.baseline(), writes=True)


@pytest.fixture(scope="module")
def chaos_data():
    return generate(CHAOS_SF)


def test_journal_fault_exhaustion_leaves_store_unmutated(chaos_data):
    store = CStore(chaos_data)
    clean_rows = store.execute(Q1_1, ExecutionConfig.baseline()).result.rows
    FaultInjector(11, [FaultPolicy(file_glob="journal.redo",
                                   write_fail_rate=1.0,
                                   max_write_failures=1000)]) \
        .install(store.disk)
    with pytest.raises(WriteFaultError, match="journal append"):
        store.insert("lineorder", clone_rows(chaos_data.lineorder, 5))
    # the batch was never acknowledged: no epoch, no pending rows, and
    # read-only reads still pass the gate and answer exactly as before
    assert store.pending_writes() == 0
    assert store.write_epoch == 0
    after = store.execute(Q1_1, ExecutionConfig.baseline())
    assert after.result.rows == clean_rows


def test_journal_transient_fault_retries_to_success(chaos_data):
    store = CStore(chaos_data)
    FaultInjector(11, [FaultPolicy(file_glob="journal.redo",
                                   write_fail_rate=1.0,
                                   max_write_failures=2)]) \
        .install(store.disk)
    from repro.simio.stats import QueryStats
    stats = QueryStats()
    inserts, predicates = write_mix(chaos_data)
    assert store.insert("lineorder", inserts, stats) == len(inserts)
    assert store.delete("lineorder", predicates, stats) > 0
    assert stats.io_retries > 0
    assert stats.retry_backoff_us > 0
    run = store.execute(Q1_1, WRITE_CONFIG)
    expected = reference_execute(store._writes.effective_tables(),
                                 Q1_1).rows
    assert run.result.rows == expected


def test_tuple_move_retries_transient_page_faults(chaos_data):
    store = CStore(chaos_data)
    inserts, predicates = write_mix(chaos_data)
    store.insert("lineorder", inserts)
    store.delete("lineorder", predicates)
    expected = reference_execute(store._writes.effective_tables(),
                                 Q1_1).rows
    # page 0 of each quantity file fails exactly once; the mover's
    # shadow rebuild retries through both and succeeds
    FaultInjector(5, [FaultPolicy(file_glob="lineorder.*.quantity",
                                  page_hi=1, write_fail_rate=1.0,
                                  max_write_failures=1)]) \
        .install(store.disk)
    from repro.simio.stats import QueryStats
    stats = QueryStats()
    pending = store.pending_writes()
    assert store.move(stats) == pending > 0
    assert stats.io_retries > 0
    assert stats.moves == 1
    run = store.execute(Q1_1, ExecutionConfig.baseline())
    assert run.result.rows == expected


def test_tuple_move_exhaustion_keeps_old_store_serving(chaos_data):
    store = CStore(chaos_data)
    inserts, predicates = write_mix(chaos_data)
    store.insert("lineorder", inserts)
    store.delete("lineorder", predicates)
    pending = store.pending_writes()
    expected = reference_execute(store._writes.effective_tables(),
                                 Q1_1).rows
    FaultInjector(13, [FaultPolicy(file_glob="lineorder.*",
                                   write_fail_rate=1.0,
                                   max_write_failures=1000)]) \
        .install(store.disk)
    with pytest.raises(WriteFaultError, match="tuple move"):
        store.move()
    # the serving store is untouched: the delta is still pending and
    # snapshot merge reads still answer exactly the reference rows
    assert store.pending_writes() == pending
    run = store.execute(Q1_1, WRITE_CONFIG)
    assert run.result.rows == expected
    # with the schedule lifted the same move drains cleanly
    store.disk.fault_injector = None
    assert store.move() == pending
    post = store.execute(Q1_1, ExecutionConfig.baseline())
    assert post.result.rows == expected
