"""Chaos suite: drain()/close() while faulted queries are in flight.

The lifecycle contract under sustained corruption: ``drain()`` returns
(no deadlock) even when every in-flight query is failing typed, every
client observes either a correct result or a :class:`ReproError`
subclass, admission slots are all released, and a closed service
refuses new work with a typed error.
"""

import threading

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import AdmissionError, ReproError
from repro.simio.faults import FaultInjector, FaultPolicy
from repro.serve import QueryService, ServiceConfig
from repro.ssb.queries import Q1_1, Q1_2, Q1_3, Q2_1

pytestmark = pytest.mark.chaos

CHAOS_SF = 0.004
WORKER_COUNTS = (1, 4)
ROUNDS = 3
JOIN_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def chaos_data():
    from repro.ssb.generator import generate
    return generate(CHAOS_SF)


def _faulted_store(chaos_data, seed):
    """A column store whose quantity column is persistently corrupt on
    every disk — Q1.* fail typed, Q2.* (no quantity) stay correct."""
    store = CStore(chaos_data)
    injector = FaultInjector(seed, [FaultPolicy(
        file_glob="lineorder.*.quantity", bitflip_rate=1.0)])
    assert injector.install(store.disk)
    return store


def _run_clients(service, clients, outcomes):
    """Each client pushes ROUNDS queries (mostly faulting) and records
    every outcome; returns the started threads."""
    barrier = threading.Barrier(clients + 1)

    def client(index):
        session = service.session(engine="cs",
                                  config=ExecutionConfig.baseline())
        barrier.wait()
        for round_no in range(ROUNDS):
            query = (Q1_1, Q1_2, Q1_3, Q2_1)[(index + round_no) % 4]
            try:
                run = session.execute(query, cached=False)
                outcomes.append(("ok", query.name, run))
            except ReproError as error:
                outcomes.append(("error", query.name, error))
            except BaseException as error:  # pragma: no cover
                outcomes.append(("untyped", query.name, error))

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    return threads


@pytest.mark.parametrize("clients", WORKER_COUNTS)
def test_drain_returns_with_faulted_queries_in_flight(chaos_data, clients):
    store = _faulted_store(chaos_data, seed=303)
    config = ServiceConfig(cache=False, max_in_flight=max(1, clients // 2),
                           queue_timeout=JOIN_TIMEOUT)
    service = QueryService(cstore=store, config=config)
    outcomes = []
    threads = _run_clients(service, clients, outcomes)
    service.drain()  # must come back even though queries are failing

    # drain() returning means nothing is queued or holding a slot
    assert service.admission.in_flight == 0
    assert service.admission.queued == 0
    with pytest.raises(AdmissionError, match="draining"):
        service.submit(Q1_1)

    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    assert not any(thread.is_alive() for thread in threads)
    assert len(outcomes) == clients * ROUNDS
    assert not [o for o in outcomes if o[0] == "untyped"]
    # the corrupt column really fired (typed) at least once
    assert [o for o in outcomes if o[0] == "error"]
    # every failure rode out a verifiable partial ledger
    for _kind, _name, error in [o for o in outcomes if o[0] == "error"]:
        if getattr(error, "trace", None) is not None:
            error.trace.verify(error.stats)

    # a drained (not closed) service can resume and serve again
    service.admission.resume()
    run = service.submit(Q2_1, service.session(engine="cs"), cached=False)
    assert run.result.rows
    service.close()


@pytest.mark.parametrize("clients", WORKER_COUNTS)
def test_close_rejects_new_work_and_frees_slots(chaos_data, clients):
    store = _faulted_store(chaos_data, seed=404)
    config = ServiceConfig(cache=False, queue_timeout=JOIN_TIMEOUT)
    service = QueryService(cstore=store, config=config)
    outcomes = []
    threads = _run_clients(service, clients, outcomes)
    service.close()
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    assert not any(thread.is_alive() for thread in threads)

    assert service.admission.in_flight == 0
    with pytest.raises(AdmissionError, match="closed"):
        service.submit(Q1_1)
    # close() is idempotent and safe after the storm
    service.close()
    assert not [o for o in outcomes if o[0] == "untyped"]


def test_context_manager_closes_even_when_queries_failed(chaos_data):
    store = _faulted_store(chaos_data, seed=505)
    with QueryService(cstore=store,
                      config=ServiceConfig(cache=False)) as service:
        session = service.session(engine="cs")
        with pytest.raises(ReproError):
            session.execute(Q1_1, cached=False)
        assert service.admission.in_flight == 0
    with pytest.raises(AdmissionError):
        service.submit(Q2_1)
