"""Chaos suite: all 13 SSBM queries under seeded fault schedules.

The contract under test is the robustness tentpole's acceptance bar:
every run either produces exactly the fault-free result or raises a
typed :class:`ReproError` — zero silently wrong answers, at workers=1
and workers=4.

Scale factor 0.004 (24,000 fact rows) keeps the whole matrix fast while
every query still touches multiple pages per column.
"""

from dataclasses import replace

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import CorruptPageError, ReproError
from repro.simio.faults import FaultInjector, FaultPolicy
from repro.ssb.generator import generate
from repro.ssb.queries import ALL_QUERIES

pytestmark = pytest.mark.chaos

CHAOS_SF = 0.004
WORKER_COUNTS = (1, 4)


@pytest.fixture(scope="module")
def chaos_data():
    return generate(CHAOS_SF)


@pytest.fixture(scope="module")
def fault_free_results(chaos_data):
    """Oracle: every query's result on an uncorrupted store."""
    store = CStore(chaos_data)
    config = ExecutionConfig.baseline()
    return {q.name: store.execute(q, config).result.rows
            for q in ALL_QUERIES}


def _config(workers: int) -> ExecutionConfig:
    return replace(ExecutionConfig.baseline(), workers=workers)


# --------------------------------------------------------------------- #
# transient schedules: every query completes correctly, retries visible
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_transient_schedule_all_queries(chaos_data, fault_free_results,
                                        workers):
    store = CStore(chaos_data)
    injector = FaultInjector(101, [FaultPolicy(transient_rate=0.2,
                                               max_transient_failures=2)])
    injector.install(store.disk)
    total_retries = 0
    for query in ALL_QUERIES:
        injector.reset_transients()  # fresh schedule per query
        run = store.execute(query, _config(workers))
        assert run.result.rows == fault_free_results[query.name], query.name
        total_retries += run.stats.io_retries
        assert run.stats.retry_backoff_us >= run.stats.io_retries * 100 \
            or run.stats.io_retries == 0
    assert total_retries > 0  # the schedule actually fired


# --------------------------------------------------------------------- #
# persistent corruption without redundancy: correct or typed, never wrong
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_persistent_corruption_all_queries(chaos_data, fault_free_results,
                                           workers):
    store = CStore(chaos_data)
    # both levels of the quantity column: no intact sibling remains, so
    # affected queries must fail typed while the rest stay correct
    injector = FaultInjector(202, [FaultPolicy(
        file_glob="lineorder.*.quantity", bitflip_rate=1.0)])
    log = injector.install(store.disk)
    assert log
    outcomes = {}
    for query in ALL_QUERIES:
        try:
            run = store.execute(query, _config(workers))
        except ReproError as error:
            assert isinstance(error, CorruptPageError), query.name
            assert "quantity" in error.file
            outcomes[query.name] = "typed-error"
        else:
            assert run.result.rows == fault_free_results[query.name], \
                query.name
            outcomes[query.name] = "correct"
    # flight 1 restricts quantity, so it must have hit the corruption
    assert outcomes["Q1.1"] == "typed-error"
    assert "correct" in outcomes.values()
    # outcomes are a pure function of the seed, not of the worker count
    assert outcomes == {
        q.name: ("typed-error" if q.name.startswith("Q1") else "correct")
        for q in ALL_QUERIES
    }


# --------------------------------------------------------------------- #
# recovery: a redundant projection turns corruption into a failover
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_recovery_via_redundant_projection(chaos_data, fault_free_results,
                                           workers):
    store = CStore(chaos_data)
    store.add_projection("lineorder", ("partkey",))
    # corrupt the *default* fact projection only; the partkey-sorted
    # sibling remains intact and serves every query
    injector = FaultInjector(303, [FaultPolicy(
        file_glob="lineorder.*.orderdate_quantity_discount.*",
        bitflip_rate=1.0)])
    log = injector.install(store.disk)
    assert log
    recovered = 0
    for query in ALL_QUERIES:
        run = store.execute(query, _config(workers))
        assert run.result.rows == fault_free_results[query.name], query.name
        recovered += run.stats.recoveries
    assert recovered > 0


# --------------------------------------------------------------------- #
# fast smoke (fixed seeds, one flight) — the tier-1 fault-path gate
# --------------------------------------------------------------------- #
def test_chaos_smoke(chaos_data, fault_free_results):
    store = CStore(chaos_data)
    FaultInjector(7, [FaultPolicy(transient_rate=0.3,
                                  max_transient_failures=2)]).install(
        store.disk)
    for name in ("Q1.1", "Q2.1", "Q3.1", "Q4.1"):
        query = next(q for q in ALL_QUERIES if q.name == name)
        for workers in WORKER_COUNTS:
            run = store.execute(query, _config(workers))
            assert run.result.rows == fault_free_results[name]
