"""Harness, figures, report, and paper-data tests (tiny scale factor)."""

import pytest

from repro.bench.harness import Harness, RunGrid, scale_factor_from_env
from repro.bench.figures import figure7, figure8, storage_report
from repro.bench.paper_data import (
    PAPER_FIGURE5,
    PAPER_FIGURE6,
    PAPER_FIGURE7,
    PAPER_FIGURE8,
    QUERY_ORDER,
    average,
)
from repro.bench.report import (
    normalized_averages,
    render_comparison,
    render_grid,
    render_storage,
)
from repro.core.config import CONFIG_LADDER
from repro.errors import BenchmarkError
from repro.rowstore.designs import DesignKind
from repro.ssb import query_by_name


@pytest.fixture(scope="module")
def harness():
    # large enough that fixed per-query costs (seeks, dimension scans)
    # do not swamp the shapes under test
    return Harness(scale_factor=0.02, verify_against_reference=True)


def test_scale_factor_env(monkeypatch):
    monkeypatch.delenv("REPRO_SF", raising=False)
    assert scale_factor_from_env() == 0.05
    monkeypatch.setenv("REPRO_SF", "0.2")
    assert scale_factor_from_env() == 0.2
    monkeypatch.setenv("REPRO_SF", "junk")
    with pytest.raises(BenchmarkError):
        scale_factor_from_env()
    monkeypatch.setenv("REPRO_SF", "-1")
    with pytest.raises(BenchmarkError):
        scale_factor_from_env()


def test_paper_data_complete():
    for figure in (PAPER_FIGURE5, PAPER_FIGURE6, PAPER_FIGURE7,
                   PAPER_FIGURE8):
        for series in figure.values():
            assert sorted(series) == sorted(QUERY_ORDER)
    # the averages printed in the paper are reproduced by `average`
    assert average(PAPER_FIGURE7["tICL"]) == pytest.approx(4.0, abs=0.06)
    assert average(PAPER_FIGURE6["AI"]) == pytest.approx(221.2, abs=0.5)
    assert average(PAPER_FIGURE5["CS (Row-MV)"]) == pytest.approx(
        25.9, abs=0.1)


def test_run_grid():
    grid = RunGrid("t")
    grid.add("a", "Q1.1", 1.0)
    grid.add("a", "Q1.2", 3.0)
    grid.add("b", "Q1.1", 2.0)
    grid.add("b", "Q1.2", 2.0)
    assert grid.averages() == {"a": 2.0, "b": 2.0}
    assert grid.query_names() == ["Q1.1", "Q1.2"]


def test_harness_runs_verified(harness):
    q = query_by_name("Q2.1")
    assert harness.run_row_design(q, DesignKind.TRADITIONAL) > 0
    assert harness.run_column_config(q, CONFIG_LADDER[0]) > 0
    assert harness.run_row_mv(q) > 0


def test_figure7_shape(harness):
    """The headline ablation claims hold at tiny scale too."""
    grid = figure7(harness)
    avgs = grid.averages()
    # compression: ~2x on average (allow a broad band)
    assert 1.3 < avgs["ticL"] / avgs["tiCL"] < 6
    # late materialization: ~3x
    assert 1.5 < avgs["Ticl"] / avgs["TicL"] < 6
    # invisible join helps
    assert avgs["tiCL"] > avgs["tICL"]
    # the fully-stripped configuration is the slowest
    assert avgs["Ticl"] == max(avgs.values())
    # the full column store is the fastest
    assert avgs["tICL"] == min(avgs.values())


def test_figure8_shape(harness):
    grid = figure8(harness)
    avgs = grid.averages()
    # uncompressed pre-join is worse than the invisible join (the full
    # ~5x gap of the paper emerges at the default bench SF of 0.05+,
    # where fixed per-query seek costs stop mattering)
    assert avgs["PJ, No C"] > 1.3 * avgs["Base"]
    # max compression makes denormalization competitive
    assert avgs["PJ, Max C"] < 1.5 * avgs["Base"]
    assert avgs["PJ, Int C"] < avgs["PJ, No C"]


def test_storage_report(harness):
    report = storage_report(harness)
    assert report["vertical partition: all 17 column-tables"] > \
        report["row-store fact heap (traditional)"]
    assert report["C-Store fact projection (compressed)"] < \
        report["C-Store fact projection (uncompressed)"]
    assert report["C-Store orderdate column (compressed, RLE)"] < 0.05
    text = render_storage(report)
    assert "fact heap" in text


def test_render_grid_and_comparison(harness):
    grid = RunGrid("demo")
    for label in ("tICL", "Ticl"):
        for q in QUERY_ORDER:
            grid.add(label, q, 1.0 if label == "tICL" else 10.0)
    table = render_grid(grid)
    assert "demo" in table and "AVG" in table
    comparison = render_comparison(grid, PAPER_FIGURE7)
    assert "measured" in comparison and "paper" in comparison
    norm = normalized_averages(grid.series)
    assert norm["tICL"] == 1.0
    assert norm["Ticl"] == 10.0


def test_render_cost_breakdown(harness):
    from repro.bench.report import render_cost_breakdown
    from repro.core.config import ExecutionConfig

    run = harness.cstore().execute(query_by_name("Q2.1"),
                                   ExecutionConfig.baseline())
    text = render_cost_breakdown(run.stats, harness.cstore().cost_model,
                                 "demo")
    assert "demo" in text
    assert "bytes_read (transfer)" in text
    assert "TOTAL" in text
    # shares add up to ~100%
    shares = [float(line.split()[-1].rstrip("%"))
              for line in text.splitlines()
              if line.strip().endswith("%")]
    assert sum(shares) == pytest.approx(100.0, abs=1.5)


def test_render_bars():
    from repro.bench.report import render_bars

    grid = RunGrid("demo")
    grid.add("fast", "Q1.1", 1.0)
    grid.add("slow", "Q1.1", 4.0)
    text = render_bars(grid, width=8)
    assert "averages" in text
    fast_line = next(l for l in text.splitlines() if "fast" in l)
    slow_line = next(l for l in text.splitlines() if "slow" in l)
    assert slow_line.count("#") == 4 * fast_line.count("#")


def test_baseline_record_stamps_writes(tmp_path):
    import json

    from repro.bench.baseline import (
        baseline_record,
        load_baseline,
        write_baseline,
    )

    grid = RunGrid("t")
    grid.add("a", "Q1.1", 1.0)
    record = baseline_record(grid, figure="f", scale_factor=0.004,
                             workers=1)
    assert record["writes"] is False  # read-only is the default stamp
    path = tmp_path / "baseline.json"
    write_baseline(str(path), grid, figure="f", scale_factor=0.004,
                   workers=1, writes=True)
    assert load_baseline(str(path))["writes"] is True
    # a pre-write-store artifact omits the key and loads fine: callers
    # read the absent stamp as writes-off
    stripped = json.loads(path.read_text())
    del stripped["writes"]
    path.write_text(json.dumps(stripped))
    loaded = load_baseline(str(path))
    assert "writes" not in loaded
    assert loaded.get("writes", False) is False


def test_harness_writes_knob_is_ledger_invisible():
    """A writes-enabled harness with no pending delta produces the same
    simulated seconds as a read-only one (the acceptance bar's
    byte-identical guarantee, at the harness level)."""
    from repro.rowstore.designs import DesignKind

    read_only = Harness(scale_factor=0.004)
    writable = Harness(scale_factor=0.004, writes=True)
    assert writable.system_x([DesignKind.TRADITIONAL]).writes is True
    query = query_by_name("Q1.1")
    cold_ro = read_only.system_x([DesignKind.TRADITIONAL]) \
        .execute(query, DesignKind.TRADITIONAL)
    cold_rw = writable.system_x([DesignKind.TRADITIONAL]) \
        .execute(query, DesignKind.TRADITIONAL)
    assert cold_ro.seconds == cold_rw.seconds
