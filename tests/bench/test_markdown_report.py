"""Markdown report writer tests."""

import pytest

from repro.bench.harness import Harness
from repro.bench.markdown import write_report


@pytest.fixture(scope="module")
def document():
    return write_report(Harness(scale_factor=0.005))


def test_report_has_all_sections(document):
    for title in ("Figure 5", "Figure 6", "Figure 7", "Figure 8",
                  "Storage report"):
        assert title in document


def test_report_has_all_series(document):
    for label in ("tICL", "Ticl", "T(B)", "VP", "AI", "CS (Row-MV)",
                  "PJ, Max C"):
        assert f"| {label} |" in document


def test_report_mentions_scale(document):
    assert "Scale factor **0.005**" in document
    assert "30,000 fact rows" in document


def test_report_is_valid_markdown_tables(document):
    # every table row has a consistent pipe count within its table
    lines = document.splitlines()
    for i, line in enumerate(lines):
        if line.startswith("|---"):
            width = line.count("|")
            j = i + 1
            while j < len(lines) and lines[j].startswith("|"):
                assert lines[j].count("|") == width, lines[j]
                j += 1
