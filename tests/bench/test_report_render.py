"""Grid aggregation guards and renderer edge cases (no engine runs)."""

import pytest

from repro.bench.harness import RunGrid
from repro.bench.report import (
    normalized_averages,
    render_bars,
    render_cost_breakdown,
    render_grid,
)
from repro.errors import BenchmarkError
from repro.simio.stats import PAPER_2008, QueryStats


def _aligned_grid():
    grid = RunGrid("t")
    for label, scale in (("a", 1.0), ("b", 2.0)):
        for q in ("Q1.1", "Q1.2"):
            grid.add(label, q, scale)
    return grid


# --------------------------------------------------------------------- #
# RunGrid.averages / query_names
# --------------------------------------------------------------------- #
def test_averages_rejects_misaligned_series():
    grid = _aligned_grid()
    grid.add("c", "Q1.1", 5.0)  # c is missing Q1.2
    with pytest.raises(BenchmarkError, match="'c'"):
        grid.averages()


def test_averages_names_extra_queries():
    grid = _aligned_grid()
    grid.add("b", "Q9.9", 1.0)
    with pytest.raises(BenchmarkError, match="Q9.9"):
        grid.averages()


def test_averages_rejects_empty_series():
    grid = RunGrid("t")
    grid.series["empty"] = {}
    with pytest.raises(BenchmarkError, match="no measurements"):
        grid.averages()


def test_query_names_empty_grid_is_typed_error():
    with pytest.raises(BenchmarkError, match="no series"):
        RunGrid("empty figure").query_names()


def test_validate_aligned_accepts_good_and_empty_grids():
    _aligned_grid().validate_aligned()
    RunGrid("empty").validate_aligned()


# --------------------------------------------------------------------- #
# render_grid
# --------------------------------------------------------------------- #
def test_render_grid_partial_series_renders_dashes():
    grid = _aligned_grid()
    grid.add("c", "Q1.1", 5.0)  # no Q1.2 measurement
    table = render_grid(grid, queries=["Q1.1", "Q1.2"])
    c_line = next(l for l in table.splitlines() if l.strip().startswith("c"))
    assert "-" in c_line
    # AVG over the present cells only: 5.0, not 2.5
    assert "5.0000" in c_line
    # complete rows render without dashes
    a_line = next(l for l in table.splitlines() if l.strip().startswith("a"))
    assert "-" not in a_line


def test_render_grid_empty_grid_renders_header_only():
    table = render_grid(RunGrid("empty"), queries=["Q1.1"])
    assert "empty" in table and "AVG" in table


# --------------------------------------------------------------------- #
# normalized_averages
# --------------------------------------------------------------------- #
def test_normalized_averages_zero_baseline_is_typed_error():
    series = {"base": {"Q1.1": 0.0, "Q1.2": 0.0}, "other": {"Q1.1": 1.0}}
    with pytest.raises(BenchmarkError, match="'base'"):
        normalized_averages(series)


def test_normalized_averages_empty_is_typed_error():
    with pytest.raises(BenchmarkError, match="empty"):
        normalized_averages({})


# --------------------------------------------------------------------- #
# render_cost_breakdown
# --------------------------------------------------------------------- #
def _shares(text):
    return [float(line.split()[-1].rstrip("%"))
            for line in text.splitlines() if line.strip().endswith("%")]


def test_cost_breakdown_shares_sum_to_100():
    stats = QueryStats()
    stats.bytes_read = 10 * 1024 * 1024
    stats.seeks = 4
    stats.hash_probes = 100_000
    stats.agg_updates = 50_000
    text = render_cost_breakdown(stats, PAPER_2008, "demo")
    assert "demo" in text and "TOTAL" in text
    assert sum(_shares(text)) == pytest.approx(100.0, abs=1.5)


def test_cost_breakdown_retry_backoff_row_only_when_nonzero():
    stats = QueryStats()
    stats.bytes_read = 1024
    assert "retry backoff" not in render_cost_breakdown(stats, PAPER_2008)
    stats.retry_backoff_us = 500
    assert "retry backoff" in render_cost_breakdown(stats, PAPER_2008)


def test_cost_breakdown_zero_total_no_division():
    text = render_cost_breakdown(QueryStats(), PAPER_2008, "idle")
    assert "TOTAL" in text
    assert all(share == 0.0 for share in _shares(text))


# --------------------------------------------------------------------- #
# render_bars
# --------------------------------------------------------------------- #
def test_render_bars_zero_totals_no_division():
    grid = RunGrid("t")
    grid.add("a", "Q1.1", 0.0)
    grid.add("b", "Q1.1", 0.0)
    text = render_bars(grid, width=8)
    assert "averages" in text
    assert "0.0000s" in text


def test_render_bars_rejects_misaligned_grid():
    grid = _aligned_grid()
    grid.add("c", "Q1.1", 1.0)
    with pytest.raises(BenchmarkError):
        render_bars(grid)
