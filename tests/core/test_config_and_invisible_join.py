"""Config ladder and invisible join behaviour tests."""

import numpy as np
import pytest

from repro.core.config import CONFIG_LADDER, ExecutionConfig
from repro.core.invisible_join import (
    DimensionSide,
    InvisibleJoin,
    JoinStrategy,
    LateMaterializedJoin,
)
from repro.errors import PlanError
from repro.reference import selected_positions
from repro.ssb.queries import ALL_QUERIES, query_by_name
from repro.storage.colfile import CompressionLevel


# --------------------------------------------------------------------- #
# ExecutionConfig
# --------------------------------------------------------------------- #
def test_labels_roundtrip():
    for config in CONFIG_LADDER:
        assert ExecutionConfig.from_label(config.label) == config


def test_ladder_matches_paper_order():
    assert [c.label for c in CONFIG_LADDER] == [
        "tICL", "TICL", "tiCL", "TiCL", "ticL", "TicL", "Ticl"]


def test_invisible_requires_late_materialization():
    with pytest.raises(PlanError):
        ExecutionConfig(invisible_join=True, late_materialization=False)


def test_bad_label_rejected():
    for bad in ("xxxx", "tIC", "TICLL", "aICL"):
        with pytest.raises(PlanError):
            ExecutionConfig.from_label(bad)


def test_baseline_and_rowlike():
    assert ExecutionConfig.baseline().label == "tICL"
    assert ExecutionConfig.row_store_like().label == "Ticl"


# --------------------------------------------------------------------- #
# invisible join internals (via a loaded CStore)
# --------------------------------------------------------------------- #
def _join(cstore, ssb_data, name, cls=InvisibleJoin, config=None,
          **kwargs):
    query = query_by_name(name)
    config = config or ExecutionConfig.baseline()
    level = CompressionLevel.MAX
    fact_proj = cstore.projection("lineorder", level)
    dims = {}
    for dim in query.dimensions_used():
        table = ssb_data.table(dim)
        dims[dim] = DimensionSide(
            name=dim,
            projection=cstore.projection(dim, level),
            key_column=query.key_of(dim),
            catalog={c.name: c for c in table.columns()},
            contiguous_from=cstore._contiguous[dim],
            key_monotonic=cstore._monotonic[dim],
        )
    fact_catalog = {c.name: c for c in ssb_data.lineorder.columns()}
    cstore.disk.stats.reset()
    return cls(cstore.pool, config, fact_proj, dims, query, level,
               fact_catalog, **kwargs), query


def test_invisible_join_positions_match_oracle(cstore, ssb_data):
    sorted_tables = {
        "lineorder": cstore.data.lineorder.sort_by(
            ["orderdate", "quantity", "discount"]),
        **{k: v for k, v in ssb_data.tables.items() if k != "lineorder"},
    }
    for name in ("Q1.1", "Q2.1", "Q3.1", "Q4.3"):
        join, query = _join(cstore, ssb_data, name)
        survivors, _rows = join.run()
        expected = selected_positions(sorted_tables, query)
        assert sorted(survivors.to_array().tolist()) == expected.tolist()


def test_between_rewrite_fires_on_every_ssb_query(cstore, ssb_data):
    """Section 6.3.2: 'it was possible to use the between-predicate
    rewriting optimization at least once per query'."""
    for query in ALL_QUERIES:
        join, _ = _join(cstore, ssb_data, query.name)
        join.run()
        strategies = [f.strategy for f in join.filters.values()]
        assert JoinStrategy.BETWEEN in strategies, query.name


def test_between_rewrite_avoids_hash_probes_q2_1(cstore, ssb_data):
    join, _ = _join(cstore, ssb_data, "Q2.1")
    join.run()
    with_between = cstore.disk.stats.snapshot()
    # the category and region predicates both produce contiguous keys
    assert join.filters["part"].strategy is JoinStrategy.BETWEEN
    assert join.filters["supplier"].strategy is JoinStrategy.BETWEEN

    join_lm, _ = _join(cstore, ssb_data, "Q2.1", cls=LateMaterializedJoin)
    join_lm.run()
    without = cstore.disk.stats.snapshot()
    assert without["hash_probes"] > with_between["hash_probes"]
    assert with_between["range_checks"] >= 0


def test_invisible_join_disabled_falls_back_to_hash(cstore, ssb_data):
    config = ExecutionConfig.from_label("tICL")
    join, _ = _join(cstore, ssb_data, "Q2.1", config=config,
                    allow_between=False)
    join.run()
    assert join.filters["part"].strategy is JoinStrategy.HASH


def test_unfiltered_dimension_gets_none_strategy(cstore, ssb_data):
    # Q2.1 groups by d.year but has no date predicate
    join, _ = _join(cstore, ssb_data, "Q2.1")
    join.run()
    assert join.filters["date"].strategy is JoinStrategy.NONE


def test_date_extraction_needs_real_lookup(cstore, ssb_data):
    """The date key is not contiguous-from-1, so phase 3 pays hash
    probes for it (Section 5.4.1's 'full join must be performed')."""
    join, _ = _join(cstore, ssb_data, "Q2.1")
    cstore.disk.stats.reset()
    join.run()
    assert cstore.disk.stats.hash_probes > 0


def test_contiguous_dims_detected(cstore):
    assert cstore._contiguous["customer"] == 1
    assert cstore._contiguous["supplier"] == 1
    assert cstore._contiguous["part"] == 1
    assert cstore._contiguous["date"] is None
    assert cstore._monotonic["date"] is True


def test_lm_join_matches_invisible_positions(cstore, ssb_data):
    for name in ("Q1.2", "Q3.2", "Q4.1"):
        inv, _ = _join(cstore, ssb_data, name)
        p1, rows1 = inv.run()
        lm, _ = _join(cstore, ssb_data, name, cls=LateMaterializedJoin)
        p2, rows2 = lm.run()
        assert p1.to_array().tolist() == p2.to_array().tolist()
        for dim in rows1:
            assert np.array_equal(rows1[dim], rows2[dim])
