"""Simulated disk, buffer pool, and cost model tests."""

import pytest

from repro.errors import StorageError
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import PAGE_SIZE, SimulatedDisk
from repro.simio.stats import CostModel, QueryStats


# --------------------------------------------------------------------- #
# disk
# --------------------------------------------------------------------- #
def test_create_and_read(disk):
    disk.create("f")
    page_no = disk.append_page("f", b"hello")
    assert page_no == 0
    assert disk.read_page("f", 0) == b"hello"
    assert disk.stats.bytes_read == PAGE_SIZE
    assert disk.stats.bytes_written == PAGE_SIZE


def test_duplicate_create_rejected(disk):
    disk.create("f")
    with pytest.raises(StorageError):
        disk.create("f")


def test_missing_file_rejected(disk):
    with pytest.raises(StorageError):
        disk.file("nope")


def test_oversized_page_rejected(disk):
    disk.create("f")
    with pytest.raises(StorageError):
        disk.append_page("f", b"x" * (PAGE_SIZE + 1))


def test_out_of_range_page_rejected(disk):
    disk.create("f")
    disk.append_page("f", b"a")
    with pytest.raises(StorageError):
        disk.read_page("f", 1)


def test_sequential_scan_charges_one_seek(disk):
    disk.create("f")
    for i in range(10):
        disk.append_page("f", bytes([i]))
    disk.reset_head()
    list(disk.scan_pages("f"))
    assert disk.stats.seeks == 1
    assert disk.stats.pages_read == 10


def test_random_access_charges_seeks(disk):
    disk.create("f")
    for i in range(10):
        disk.append_page("f", bytes([i]))
    disk.reset_head()
    disk.read_page("f", 7)
    disk.read_page("f", 2)
    disk.read_page("f", 3)  # adjacent to previous -> no new seek
    assert disk.stats.seeks == 2


def test_interleaved_files_seek(disk):
    disk.create("a")
    disk.create("b")
    disk.append_page("a", b"1")
    disk.append_page("b", b"2")
    disk.reset_head()
    disk.read_page("a", 0)
    disk.read_page("b", 0)
    disk.read_page("a", 0)
    assert disk.stats.seeks == 3


def test_drop_and_total_bytes(disk):
    disk.create("f")
    disk.append_page("f", b"x")
    assert disk.total_bytes == PAGE_SIZE
    disk.drop("f")
    assert disk.total_bytes == 0
    assert not disk.exists("f")


# --------------------------------------------------------------------- #
# buffer pool
# --------------------------------------------------------------------- #
def _fill(disk, name, pages):
    disk.create(name)
    for i in range(pages):
        disk.append_page(name, bytes([i % 251]))


def test_pool_hit_is_free(disk):
    _fill(disk, "f", 3)
    pool = BufferPool(disk, capacity_bytes=PAGE_SIZE * 8)
    before = disk.stats.bytes_read
    pool.read_page("f", 0)
    assert disk.stats.bytes_read == before + PAGE_SIZE
    pool.read_page("f", 0)
    assert disk.stats.bytes_read == before + PAGE_SIZE
    assert disk.stats.buffer_hits == 1


def test_pool_lru_eviction(disk):
    _fill(disk, "f", 4)
    pool = BufferPool(disk, capacity_bytes=PAGE_SIZE * 2)
    pool.read_page("f", 0)
    pool.read_page("f", 1)
    pool.read_page("f", 2)  # evicts page 0
    before_hits = disk.stats.buffer_hits
    pool.read_page("f", 1)  # hit
    assert disk.stats.buffer_hits == before_hits + 1
    pool.read_page("f", 0)  # miss again
    assert disk.stats.buffer_hits == before_hits + 1


def test_pool_warm_is_uncharged(disk):
    _fill(disk, "f", 3)
    pool = BufferPool(disk, capacity_bytes=PAGE_SIZE * 8)
    pool.warm("f")
    assert disk.stats.bytes_read == 0
    pool.read_page("f", 1)
    assert disk.stats.buffer_hits == 1


def test_pool_invalidate(disk):
    _fill(disk, "f", 2)
    pool = BufferPool(disk, capacity_bytes=PAGE_SIZE * 8)
    pool.read_page("f", 0)
    pool.invalidate("f")
    before = disk.stats.buffer_hits
    pool.read_page("f", 0)
    assert disk.stats.buffer_hits == before


def test_pool_too_small_rejected(disk):
    with pytest.raises(StorageError):
        BufferPool(disk, capacity_bytes=100)


# --------------------------------------------------------------------- #
# stats / cost model
# --------------------------------------------------------------------- #
def test_stats_merge_and_reset():
    a = QueryStats(bytes_read=10, hash_probes=5)
    b = QueryStats(bytes_read=1, iterator_calls=2)
    a.merge(b)
    assert a.bytes_read == 11
    assert a.iterator_calls == 2
    a.reset()
    assert all(v == 0 for v in a.snapshot().values())


def test_stats_diff():
    a = QueryStats(bytes_read=10)
    snap = a.snapshot()
    a.bytes_read += 7
    a.seeks += 2
    d = a.diff(snap)
    assert d.bytes_read == 7
    assert d.seeks == 2


def test_cost_model_io():
    model = CostModel(seq_mbps=100.0, seek_seconds=0.01)
    stats = QueryStats(bytes_read=100 * 1024 * 1024, seeks=3)
    assert model.io_seconds(stats) == pytest.approx(1.0 + 0.03)


def test_cost_model_cpu_additive():
    model = CostModel()
    stats = QueryStats(hash_probes=1000)
    only_probes = model.cpu_seconds(stats)
    stats.values_scanned_vector = 1000
    assert model.cpu_seconds(stats) > only_probes


def test_cost_breakdown_total():
    model = CostModel()
    stats = QueryStats(bytes_read=1024, iterator_calls=10)
    cost = model.cost(stats)
    assert cost.total_seconds == pytest.approx(
        cost.io_seconds + cost.cpu_seconds)
    assert model.seconds(stats) == pytest.approx(cost.total_seconds)
