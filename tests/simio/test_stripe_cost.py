"""Per-disk attribution over the 4-disk stripe and its cost charging.

The legacy aggregate-bandwidth ``io_seconds`` (which every EXPERIMENTS.md
ratio is built on) must stay untouched; ``io_elapsed_seconds`` prices the
same ledger as the per-disk critical path.
"""

import numpy as np

from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import PAGE_SIZE, SimulatedDisk
from repro.simio.stats import (
    CostModel,
    NUM_STRIPE_DISKS,
    QueryStats,
)


def _disk_with_pages(n):
    disk = SimulatedDisk(QueryStats())
    disk.create("f")
    for i in range(n):
        disk.append_page("f", bytes([i % 251]) * 64)
    disk.stats.reset()  # drop the load's write charges
    return disk


def test_sequential_scan_balances_the_stripe():
    disk = _disk_with_pages(16)
    for page in range(16):
        disk.read_page("f", page)
    assert disk.stats.stripe_bytes() == [4 * PAGE_SIZE] * NUM_STRIPE_DISKS
    # one positioning per drive for the whole stream
    assert disk.stats.stripe_seeks() == [1] * NUM_STRIPE_DISKS
    assert sum(disk.stats.stripe_bytes()) == disk.stats.bytes_read


def test_single_page_read_charges_one_drive():
    disk = _disk_with_pages(8)
    disk.read_page("f", 6)  # page 6 lives on drive 6 % 4 == 2
    assert disk.stats.stripe_bytes() == [0, 0, PAGE_SIZE, 0]
    assert disk.stats.stripe_seeks() == [0, 0, 1, 0]


def test_striped_io_is_critical_path_not_sum():
    model = CostModel()
    stats = QueryStats()
    for page in range(16):
        stats.charge_stripe_read(page % NUM_STRIPE_DISKS, PAGE_SIZE,
                                 seek=page < NUM_STRIPE_DISKS)
    stats.bytes_read = 16 * PAGE_SIZE
    stats.seeks = 1
    per_disk_mbps = model.seq_mbps / NUM_STRIPE_DISKS
    expected = (4 * PAGE_SIZE) / (per_disk_mbps * 1024 * 1024) \
        + model.seek_seconds
    assert model.striped_io_seconds(stats) == expected
    # balanced sequential work: critical path ~= the aggregate charge
    assert np.isclose(model.striped_io_seconds(stats),
                      model.io_seconds(stats), rtol=0.05)


def test_unbalanced_access_priced_by_slowest_drive():
    model = CostModel()
    stats = QueryStats()
    # 8 pages, all landing on drive 0 (e.g. page numbers 0,4,8,...)
    for _ in range(8):
        stats.charge_stripe_read(0, PAGE_SIZE, seek=True)
    per_disk_mbps = model.seq_mbps / NUM_STRIPE_DISKS
    expected = 8 * PAGE_SIZE / (per_disk_mbps * 1024 * 1024) \
        + 8 * model.seek_seconds
    assert model.striped_io_seconds(stats) == expected


def test_hand_built_stats_fall_back_to_legacy_formula():
    """Ledgers without per-disk attribution (hand-built, pre-stripe)
    keep pricing exactly as before."""
    model = CostModel()
    stats = QueryStats(bytes_read=10 * PAGE_SIZE, seeks=3)
    assert model.striped_io_seconds(stats) is None
    cost = model.cost(stats)
    assert cost.io_elapsed_seconds is None
    assert cost.elapsed_seconds == cost.total_seconds


def test_total_seconds_unchanged_by_stripe_fields():
    """The paper-comparable number never depends on stripe counters."""
    model = CostModel()
    plain = QueryStats(bytes_read=8 * PAGE_SIZE, seeks=2)
    striped = QueryStats(bytes_read=8 * PAGE_SIZE, seeks=2)
    for page in range(8):
        striped.charge_stripe_read(page % NUM_STRIPE_DISKS, PAGE_SIZE,
                                   seek=page < NUM_STRIPE_DISKS)
    assert model.cost(striped).total_seconds == \
        model.cost(plain).total_seconds


def test_stripe_counters_merge_and_reset():
    a = QueryStats()
    a.charge_stripe_read(1, PAGE_SIZE, seek=True)
    b = QueryStats()
    b.charge_stripe_read(1, PAGE_SIZE, seek=False)
    b.charge_stripe_read(3, PAGE_SIZE, seek=True)
    a.merge(b)
    assert a.stripe_bytes() == [0, 2 * PAGE_SIZE, 0, PAGE_SIZE]
    assert a.stripe_seeks() == [0, 1, 0, 1]
    a.reset()
    assert a.stripe_bytes() == [0] * NUM_STRIPE_DISKS


def test_reset_head_also_resets_stripe_heads():
    disk = _disk_with_pages(8)
    disk.read_page("f", 0)
    disk.reset_head()
    disk.read_page("f", 4)  # same drive, would be sequential-local without
    assert disk.stats.stripe_seeks()[0] == 2  # reset forced a repositioning


def test_buffer_pool_lifetime_hit_counters():
    disk = _disk_with_pages(8)
    pool = BufferPool(disk, capacity_bytes=8 * PAGE_SIZE)
    assert pool.hit_rate == 0.0
    pool.read_page("f", 0)
    pool.read_page("f", 0)
    pool.read_page("f", 1)
    assert pool.misses == 2
    assert pool.hits == 1
    assert pool.hit_rate == 1 / 3
    pool.clear()  # clear drops pages but keeps lifetime counters
    assert pool.hits == 1 and pool.misses == 2
