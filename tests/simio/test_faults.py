"""Unit tests for the integrity layer: checksums, fault injection,
retry/backoff, quarantine."""

import numpy as np
import pytest

from repro.errors import ChecksumError, StorageError, TransientIOError
from repro.simio.buffer_pool import (
    BufferPool,
    MAX_READ_RETRIES,
    fill_page,
)
from repro.simio.disk import SimulatedDisk, page_checksum, stripe_of
from repro.simio.faults import (
    FaultInjector,
    FaultPolicy,
    PROFILES,
    injector_from_profile,
)
from repro.simio.stats import QueryStats


# --------------------------------------------------------------------- #
# checksums
# --------------------------------------------------------------------- #
def test_append_records_checksum(disk):
    disk.create("f")
    disk.append_page("f", b"payload")
    assert disk.file("f").checksums == [page_checksum(b"payload")]
    assert disk.verify_page("f", 0)


def test_mutation_fails_verification(disk):
    disk.create("f")
    disk.append_page("f", b"payload")
    disk.file("f").pages[0] = b"paYload"
    assert not disk.verify_page("f", 0)


def test_rewrite_page_refreshes_checksum(disk):
    disk.create("f")
    disk.append_page("f", b"old")
    disk.rewrite_page("f", 0, b"new")
    assert disk.verify_page("f", 0)
    assert disk.expected_checksum("f", 0) == page_checksum(b"new")


def test_pool_miss_verifies_and_quarantines(disk, pool):
    disk.create("f")
    disk.append_page("f", b"payload")
    disk.file("f").pages[0] = b"xayload"
    with pytest.raises(ChecksumError) as info:
        pool.read_page("f", 0)
    assert info.value.file == "f"
    assert info.value.disk_no == stripe_of(0)
    assert disk.is_quarantined("f", 0)
    assert disk.stats.pages_quarantined == 1
    assert disk.stats.checksum_failures == MAX_READ_RETRIES + 1
    # quarantined pages fail fast, without physical re-reads
    reads_before = disk.stats.pages_read
    with pytest.raises(ChecksumError, match="quarantined"):
        pool.read_page("f", 0)
    assert disk.stats.pages_read == reads_before


def test_warm_skips_corrupt_pages(disk, pool):
    disk.create("f")
    disk.append_page("f", b"good")
    disk.append_page("f", b"bad?")
    disk.file("f").pages[1] = b"bad!"
    pool.warm("f")
    assert len(pool) == 1  # only the verifying page was cached
    # the corrupt page still surfaces an error on a real read
    with pytest.raises(ChecksumError):
        pool.read_page("f", 1)


# --------------------------------------------------------------------- #
# deterministic injection
# --------------------------------------------------------------------- #
def test_schedule_reproducible_from_seed():
    a = FaultInjector(7, [FaultPolicy(transient_rate=0.3, bitflip_rate=0.2)])
    b = FaultInjector(7, [FaultPolicy(transient_rate=0.3, bitflip_rate=0.2)])
    c = FaultInjector(8, [FaultPolicy(transient_rate=0.3, bitflip_rate=0.2)])
    pages = [("f", i) for i in range(64)] + [("g", i) for i in range(64)]
    assert [a.transient_budget(*p) for p in pages] == \
        [b.transient_budget(*p) for p in pages]
    assert [a._persistent_kind(*p) for p in pages] == \
        [b._persistent_kind(*p) for p in pages]
    assert [a.transient_budget(*p) for p in pages] != \
        [c.transient_budget(*p) for p in pages]


def test_policy_scoping():
    policy = FaultPolicy(file_glob="lineorder.*", page_lo=2, page_hi=5,
                        transient_rate=1.0)
    assert policy.applies_to("lineorder.max.x", 2)
    assert policy.applies_to("lineorder.max.x", 4)
    assert not policy.applies_to("lineorder.max.x", 5)
    assert not policy.applies_to("lineorder.max.x", 1)
    assert not policy.applies_to("customer.max.x", 3)


def test_transient_budget_is_consumed_once():
    inj = FaultInjector(1, [FaultPolicy(transient_rate=1.0,
                                        max_transient_failures=2)])
    budget = inj.transient_budget("f", 0)
    assert 1 <= budget <= 2
    taken = 0
    while inj.take_transient("f", 0):
        taken += 1
    assert taken == budget
    assert not inj.take_transient("f", 0)
    inj.reset_transients()
    assert inj.take_transient("f", 0)


def test_transient_faults_are_retried_and_charged(disk, pool):
    disk.create("f")
    disk.append_page("f", b"payload")
    inj = FaultInjector(3, [FaultPolicy(transient_rate=1.0,
                                        max_transient_failures=2)])
    inj.install(disk)
    assert pool.read_page("f", 0) == b"payload"
    budget = inj.transient_budget("f", 0)
    assert disk.stats.io_retries == budget
    assert disk.stats.retry_backoff_us > 0
    # every attempt (failed + final) was billed as a physical read
    assert disk.stats.pages_read == budget + 1


def test_transient_exhaustion_raises_typed_error(disk):
    disk.create("f")
    disk.append_page("f", b"payload")

    class AlwaysFail:
        def take_transient(self, name, page_no):
            return True

    disk.fault_injector = AlwaysFail()
    with pytest.raises(TransientIOError):
        fill_page(disk, "f", 0, disk.stats)
    assert disk.stats.io_retries == MAX_READ_RETRIES


def test_bitflip_detected_by_crc(disk):
    disk.create("f")
    disk.append_page("f", b"\x00" * 1024)
    inj = FaultInjector(5, [FaultPolicy(bitflip_rate=1.0)])
    log = inj.install(disk)
    assert log == [("f", 0, "bitflip")]
    assert not disk.verify_page("f", 0)
    # exactly one bit differs
    stored = disk.file("f").pages[0]
    assert sum(bin(b).count("1") for b in stored) == 1


def test_torn_page_detected_by_crc(disk):
    disk.create("f")
    disk.append_page("f", bytes(range(256)) * 4)
    inj = FaultInjector(5, [FaultPolicy(torn_rate=1.0)])
    log = inj.install(disk)
    assert log == [("f", 0, "torn")]
    stored = disk.file("f").pages[0]
    assert len(stored) == 1024
    assert stored[512:] == b"\x00" * 512
    assert not disk.verify_page("f", 0)


def test_zero_rate_injector_changes_nothing(disk, pool):
    disk.create("f")
    for i in range(8):
        disk.append_page("f", bytes([i]) * 100)
    baseline = None
    for install in (False, True):
        disk.stats = QueryStats()
        pool.clear()
        if install:
            FaultInjector(9, [FaultPolicy()]).install(disk)
        for i in range(8):
            pool.read_page("f", i)
        snap = disk.stats.snapshot()
        if baseline is None:
            baseline = snap
    assert snap == baseline


def test_profiles_and_unknown_profile():
    for name in PROFILES:
        inj = injector_from_profile(name, seed=2)
        assert inj.policies == PROFILES[name]
    with pytest.raises(StorageError, match="unknown fault profile"):
        injector_from_profile("nope")


# --------------------------------------------------------------------- #
# scan path stays fault-free (spill round-trips are not injected)
# --------------------------------------------------------------------- #
def test_scan_pages_not_fault_injected(disk):
    disk.create("f")
    disk.append_page("f", b"payload")
    inj = FaultInjector(1, [FaultPolicy(transient_rate=1.0)])
    disk.fault_injector = inj  # no persistent corruption
    assert list(disk.scan_pages("f")) == [b"payload"]
