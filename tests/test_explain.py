"""EXPLAIN output tests for both engines."""

import pytest

from repro.core.config import ExecutionConfig
from repro.errors import PlanError
from repro.rowstore.designs import DesignKind
from repro.ssb import query_by_name


def test_column_explain_shows_between_rewrites(cstore):
    text = cstore.explain(query_by_name("Q3.1"))
    assert "invisible join" in text
    assert "BETWEEN rewrite" in text
    assert "custkey in [" in text
    assert "surviving position(s)" in text
    assert "direct array lookup" in text
    assert "sort result by year asc, revenue desc" in text


def test_column_explain_hash_fallback(cstore):
    text = cstore.explain(query_by_name("Q2.1"),
                          ExecutionConfig.from_label("tiCL"))
    assert "late materialized hash join" in text
    assert "hash set of" in text
    assert "BETWEEN rewrite" not in text


def test_column_explain_unfiltered_dimension(cstore):
    # Q2.1 groups by d.year with no date predicate
    text = cstore.explain(query_by_name("Q2.1"))
    assert "no predicates; extraction only" in text


def test_column_explain_early_materialization(cstore):
    text = cstore.explain(query_by_name("Q1.1"),
                          ExecutionConfig.from_label("Ticl"))
    assert "early materialization" in text
    assert "construct" in text
    assert "row-wise filter" in text


def test_column_explain_span_tree(cstore):
    text = cstore.explain(query_by_name("Q3.1"))
    assert "span tree (simulated seconds)" in text
    assert "phase1:dimension-filter" in text
    assert "phase2:fact-scan" in text
    assert "aggregate" in text


def test_column_explain_buffer_pool_wording(cstore):
    """Requests vs. misses: the total is page *requests*; only misses
    were read from disk."""
    text = cstore.explain(query_by_name("Q3.1"))
    pool_line = next(l for l in text.splitlines() if "buffer pool" in l)
    assert "page request(s)" in pool_line
    assert "miss(es) read from disk" in pool_line
    assert "hit rate" in pool_line
    # the old wording mislabelled total requests as reads
    assert "page read(s)" not in pool_line
    requests = int(pool_line.split("buffer pool:")[1].split()[0])
    misses = int(pool_line.split("request(s),")[1].split()[0])
    hits = int(pool_line.split("disk,")[1].split()[0])
    assert requests == misses + hits


def test_column_explain_does_not_perturb_ledger(cstore):
    q = query_by_name("Q3.2")
    before = cstore.execute(q).stats.snapshot()
    cstore.explain(q)
    after = cstore.execute(q).stats.snapshot()
    assert before == after


@pytest.mark.parametrize("design,needle", [
    (DesignKind.TRADITIONAL, "sequential scan of lineorder heap"),
    (DesignKind.TRADITIONAL_BITMAP, "bitmap access path"),
    (DesignKind.MATERIALIZED_VIEWS, "materialized view mv_f2"),
    (DesignKind.VERTICAL_PARTITIONING, "position joins over two-column"),
    (DesignKind.INDEX_ONLY, "before* any dimension filtering"),
])
def test_row_explain_per_design(system_x, design, needle):
    text = system_x.explain(query_by_name("Q2.1"), design)
    assert needle in text
    assert "EXPLAIN Q2.1" in text


def test_row_explain_partition_pruning(system_x):
    pruned = system_x.explain(query_by_name("Q1.1"),
                              DesignKind.TRADITIONAL)
    assert "6 pruned" in pruned
    unpruned = system_x.explain(query_by_name("Q1.1"),
                                DesignKind.TRADITIONAL,
                                prune_partitions=False)
    assert "all 7" in unpruned


def test_row_explain_selectivities(system_x):
    text = system_x.explain(query_by_name("Q3.1"), DesignKind.TRADITIONAL)
    assert "20.00% of keys" in text
    assert "carry [nation]" in text


def test_row_explain_analyze_appends_span_tree(system_x):
    q = query_by_name("Q2.1")
    plain = system_x.explain(q, DesignKind.TRADITIONAL)
    assert "span tree" not in plain
    analyzed = system_x.explain(q, DesignKind.TRADITIONAL, analyze=True)
    assert "span tree (simulated seconds)" in analyzed
    assert "dimension-filter" in analyzed
    assert "pipeline:scan-join-aggregate" in analyzed


def test_row_explain_analyze_does_not_perturb_ledger(system_x):
    q = query_by_name("Q2.1")
    before = system_x.execute(q, DesignKind.TRADITIONAL).stats.snapshot()
    system_x.explain(q, DesignKind.TRADITIONAL, analyze=True)
    after = system_x.execute(q, DesignKind.TRADITIONAL).stats.snapshot()
    assert before == after


def test_row_explain_unbuilt_design(ssb_data):
    from repro.rowstore.engine import SystemX

    engine = SystemX(ssb_data, designs=[DesignKind.TRADITIONAL])
    with pytest.raises(PlanError):
        engine.explain(query_by_name("Q1.1"), DesignKind.INDEX_ONLY)
