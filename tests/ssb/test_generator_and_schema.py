"""SSB generator invariants: sizing, domains, key contiguity, sort
orders, determinism."""

import numpy as np
import pytest

from repro.ssb import generate
from repro.ssb import schema as sp
from repro.ssb.generator import DEFAULT_SEED


def test_table_sizes_formula():
    sizes = sp.table_sizes(1.0)
    assert sizes["lineorder"] == 6_000_000
    assert sizes["customer"] == 30_000
    assert sizes["supplier"] == 2_000
    assert sizes["part"] == 200_000
    assert sizes["date"] == 365 * 7
    assert sp.table_sizes(4.0)["part"] == 200_000 * 3  # 1 + log2(4)
    with pytest.raises(ValueError):
        sp.table_sizes(0)


def test_sub_one_sf_prorates():
    sizes = sp.table_sizes(0.01)
    assert sizes["lineorder"] == 60_000
    assert sizes["part"] >= len(sp.BRANDS)
    assert sizes["customer"] >= len(sp.ALL_CITIES)


def test_geography_domains():
    assert len(sp.REGIONS) == 5
    assert len(sp.NATIONS) == 25
    assert len(sp.ALL_CITIES) == 250
    for nation, region in sp.NATION_REGION.items():
        assert region in sp.REGIONS
    # 5 nations per region
    from collections import Counter

    counts = Counter(sp.NATION_REGION.values())
    assert all(v == 5 for v in counts.values())


def test_city_naming():
    assert sp.city_name("UNITED KINGDOM", 1) == "UNITED KI1"
    assert sp.city_name("PERU", 3) == "PERU     3"
    assert all(len(c) == 10 for c in sp.ALL_CITIES)


def test_brand_rollup():
    assert len(sp.MFGRS) == 5
    assert len(sp.CATEGORIES) == 25
    assert len(sp.BRANDS) == 1000
    assert "MFGR#2221" in sp.BRANDS
    # brand embeds category embeds mfgr
    for brand in sp.BRANDS[:50]:
        assert brand[:7] in sp.CATEGORIES
        assert brand[:6] in sp.MFGRS


def test_row_counts(ssb_data):
    sizes = sp.table_sizes(0.01)
    for name, table in ssb_data.tables.items():
        assert table.num_rows == sizes[name], name


def test_dimension_keys_contiguous(ssb_data):
    for name in ("customer", "supplier", "part"):
        table = ssb_data.table(name)
        key_col = table.columns()[0]
        assert np.array_equal(
            key_col.data, np.arange(1, table.num_rows + 1, dtype=np.int32))


def test_dimension_sorted_by_hierarchy(ssb_data):
    for name, keys in sp.DIMENSION_SORT_KEYS.items():
        table = ssb_data.table(name)
        assert table.sort_order.keys == keys
        assert table.verify_sorted(), name


def test_fact_sorted(ssb_data):
    assert ssb_data.lineorder.sort_order.keys == sp.FACT_SORT_KEYS
    assert ssb_data.lineorder.verify_sorted()


def test_fact_fk_ranges(ssb_data):
    lo = ssb_data.lineorder
    for fk, (dim_name, key_col) in sp.FOREIGN_KEYS.items():
        fk_values = lo.column(fk).data
        dim_keys = ssb_data.table(dim_name).column(key_col).data
        assert np.isin(fk_values, dim_keys).all(), fk


def test_orderdate_distinct_values(ssb_data):
    distinct = np.unique(ssb_data.lineorder.column("orderdate").data)
    # orders span the first NUM_ORDER_DATES days of the calendar
    assert len(distinct) <= sp.NUM_ORDER_DATES
    assert len(distinct) > sp.NUM_ORDER_DATES * 0.95


def test_fact_value_domains(ssb_data):
    lo = ssb_data.lineorder
    q = lo.column("quantity").data
    assert q.min() >= 1 and q.max() <= 50
    d = lo.column("discount").data
    assert d.min() >= 0 and d.max() <= 10
    t = lo.column("tax").data
    assert t.min() >= 0 and t.max() <= 8
    rev = lo.column("revenue").data.astype(np.int64)
    ep = lo.column("extendedprice").data.astype(np.int64)
    assert np.array_equal(rev, ep * (100 - d) // 100)


def test_orders_share_attributes(ssb_data):
    lo = ssb_data.lineorder
    orderkey = lo.column("orderkey").data
    custkey = lo.column("custkey").data
    orderdate = lo.column("orderdate").data
    # every line of one order has the same customer and orderdate
    by_order = {}
    for i in range(lo.num_rows):
        k = int(orderkey[i])
        pair = (int(custkey[i]), int(orderdate[i]))
        if k in by_order:
            assert by_order[k] == pair
        else:
            by_order[k] = pair
    lines = np.bincount(orderkey)
    assert lines[lines > 0].max() <= 7


def test_date_table_calendar(ssb_data):
    date = ssb_data.date
    keys = date.column("datekey").data
    assert keys[0] == 19920101
    assert np.all(np.diff(keys) > 0)
    years = date.column("year").data
    assert years.min() == 1992 and years.max() == 1998
    ymn = date.column("yearmonthnum").data
    assert np.array_equal(ymn // 100, years)
    week = date.column("weeknuminyear").data
    assert week.min() == 1 and week.max() <= 53
    assert (week == 6).sum() == 7 * sp.NUM_YEARS


def test_date_yearmonth_strings(ssb_data):
    ym = ssb_data.date.column("yearmonth")
    assert "Dec1997" in ym.dictionary.strings
    assert "Jan1992" in ym.dictionary.strings


def test_stratified_city_coverage(ssb_data):
    """Every city has at least one supplier and customer (the property
    that keeps Q3.3's selectivity near spec at small SF)."""
    for name in ("customer", "supplier"):
        cities = ssb_data.table(name).column("city")
        counts = np.bincount(cities.data, minlength=len(
            cities.dictionary))
        assert counts.min() >= 1, name


def test_determinism():
    a = generate(0.005, seed=42)
    b = generate(0.005, seed=42)
    for name in a.tables:
        ta, tb = a.table(name), b.table(name)
        for col in ta.column_names:
            assert np.array_equal(ta.column(col).data, tb.column(col).data)
    c = generate(0.005, seed=43)
    assert not np.array_equal(a.lineorder.column("custkey").data,
                              c.lineorder.column("custkey").data)


def test_default_seed_stable(ssb_data):
    assert ssb_data.seed == DEFAULT_SEED
    assert ssb_data.scale_factor == 0.01
