"""The SSB dataset cache round-trips bit-identically."""

import numpy as np
import pytest

from repro.ssb.cache import cache_key, load, load_or_generate, save
from repro.ssb.generator import generate


@pytest.fixture(scope="module")
def small():
    return generate(0.004, seed=99)


def test_roundtrip(tmp_path, small):
    save(small, tmp_path)
    loaded = load(0.004, 99, tmp_path)
    assert loaded is not None
    assert loaded.scale_factor == small.scale_factor
    assert loaded.seed == small.seed
    for name, table in small.tables.items():
        other = loaded.table(name)
        assert other.sort_order.keys == table.sort_order.keys
        for col in table.columns():
            got = other.column(col.name)
            assert np.array_equal(got.data, col.data), (name, col.name)
            if col.dictionary is not None:
                assert got.dictionary == col.dictionary


def test_miss_returns_none(tmp_path):
    assert load(0.5, 123, tmp_path) is None


def test_corrupt_cache_is_a_miss(tmp_path, small):
    save(small, tmp_path)
    sidecar = tmp_path / (cache_key(0.004, 99) + ".json")
    sidecar.write_text("{not json")
    with pytest.warns(RuntimeWarning):  # corruption is surfaced, not silent
        assert load(0.004, 99, tmp_path) is None


def test_load_or_generate_populates(tmp_path):
    data = load_or_generate(0.004, seed=99, cache_dir=tmp_path)
    assert (tmp_path / (cache_key(0.004, 99) + ".npz")).exists()
    again = load_or_generate(0.004, seed=99, cache_dir=tmp_path)
    assert np.array_equal(again.lineorder.column("custkey").data,
                          data.lineorder.column("custkey").data)


def test_load_or_generate_without_cache_dir(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    data = load_or_generate(0.004, seed=99)
    assert data.lineorder.num_rows == 24_000


def test_env_var_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    load_or_generate(0.004, seed=99)
    assert (tmp_path / (cache_key(0.004, 99) + ".npz")).exists()


def test_corrupt_sidecar_counts_as_corruption(tmp_path, small):
    from repro.ssb.cache import CACHE_HEALTH

    save(small, tmp_path)
    sidecar = tmp_path / (cache_key(0.004, 99) + ".json")
    sidecar.write_text("{not json")
    before = CACHE_HEALTH.corruption_events
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert load(0.004, 99, tmp_path) is None
    assert CACHE_HEALTH.corruption_events == before + 1
    assert "json" in (CACHE_HEALTH.last_corruption or "").lower() or \
        CACHE_HEALTH.last_corruption is not None


def test_corrupt_npz_counts_as_corruption(tmp_path, small):
    from repro.ssb.cache import CACHE_HEALTH

    save(small, tmp_path)
    archive = tmp_path / (cache_key(0.004, 99) + ".npz")
    payload = bytearray(archive.read_bytes())
    payload[:64] = b"\x00" * 64  # destroy the zip header
    archive.write_bytes(bytes(payload))
    before = CACHE_HEALTH.corruption_events
    with pytest.warns(RuntimeWarning, match="corrupt"):
        assert load(0.004, 99, tmp_path) is None
    assert CACHE_HEALTH.corruption_events == before + 1


def test_load_or_generate_survives_corruption(tmp_path, small):
    import warnings

    from repro.ssb.cache import CACHE_HEALTH

    save(small, tmp_path)
    sidecar = tmp_path / (cache_key(0.004, 99) + ".json")
    sidecar.write_text("{not json")
    before = CACHE_HEALTH.corruption_events
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        data = load_or_generate(0.004, 99, cache_dir=tmp_path)
    assert data.seed == 99  # regenerated, not broken
    assert CACHE_HEALTH.corruption_events == before + 1


def test_genuine_miss_is_not_corruption(tmp_path):
    from repro.ssb.cache import CACHE_HEALTH

    before_corrupt = CACHE_HEALTH.corruption_events
    before_miss = CACHE_HEALTH.misses
    assert load(0.9, 321, tmp_path) is None
    assert CACHE_HEALTH.corruption_events == before_corrupt
    assert CACHE_HEALTH.misses == before_miss + 1
