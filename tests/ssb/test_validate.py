"""The SSB validator module."""

import numpy as np
import pytest

from repro.ssb.validate import ALL_CHECKS, main, validate


def test_all_checks_pass_on_generated_data(ssb_data):
    results = validate(ssb_data)
    assert len(results) == len(ALL_CHECKS)
    for result in results:
        assert result.passed, f"{result.name}: {result.detail}"


def test_validator_catches_corruption(ssb_data):
    import copy

    from repro.storage.column import Column
    from repro.storage.table import Table
    from repro.types import int32

    broken = copy.copy(ssb_data)
    lo = ssb_data.lineorder
    bad_revenue = lo.column("revenue").data.copy()
    bad_revenue[0] += 1
    columns = [
        Column.from_ints("revenue", bad_revenue, int32())
        if c.name == "revenue" else c
        for c in lo.columns()
    ]
    broken.lineorder = Table("lineorder", columns, lo.sort_order)
    results = {r.name: r for r in validate(broken)}
    assert not results[
        "revenue = extendedprice * (100 - discount) / 100"].passed


def test_cli_exit_codes():
    assert main(["--sf", "0.005"]) == 0
