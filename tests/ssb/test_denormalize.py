"""Denormalization (Figure 8 substrate) tests."""

import numpy as np
import pytest

from repro.reference import execute as ref_execute
from repro.ssb import all_queries, query_by_name
from repro.ssb.denormalize import (
    DENORM_ATTRIBUTES,
    DENORM_TABLE,
    denorm_column_name,
    denormalize,
    rewrite_query,
)


@pytest.fixture(scope="module")
def wide(ssb_data):
    return denormalize(ssb_data)


def test_wide_table_shape(ssb_data, wide):
    n_extra = sum(len(attrs) for attrs in DENORM_ATTRIBUTES.values())
    assert wide.name == DENORM_TABLE
    assert wide.num_rows == ssb_data.lineorder.num_rows
    assert len(wide.schema) == 17 + n_extra


def test_wide_values_match_join(ssb_data, wide):
    lo = ssb_data.lineorder
    cust = ssb_data.customer
    fk = lo.column("custkey").data
    regions = wide.column(denorm_column_name("customer", "region"))
    for i in (0, 17, wide.num_rows - 1):
        expected = cust.row(int(fk[i]) - 1)["region"]
        assert regions.value_at(i) == expected


def test_wide_date_year(ssb_data, wide):
    years = wide.column(denorm_column_name("date", "year")).data
    orderdate = ssb_data.lineorder.column("orderdate").data
    assert np.array_equal(years, orderdate // 10000)


def test_rewrite_has_no_joins():
    for q in all_queries():
        d = rewrite_query(q)
        assert d.joins == {}
        assert d.fact_table == DENORM_TABLE
        assert all(p.table == DENORM_TABLE for p in d.predicates)
        assert all(g.table == DENORM_TABLE for g in d.group_by)


def test_rewrite_order_by_renamed():
    d = rewrite_query(query_by_name("Q2.1"))
    keys = [k.key for k in d.order_by]
    assert keys == ["date_year", "part_brand1"]


def test_rewritten_queries_equal_originals(ssb_data, wide):
    tables = dict(ssb_data.tables)
    tables[DENORM_TABLE] = wide
    for q in all_queries():
        original = ref_execute(ssb_data.tables, q)
        denormed = ref_execute(tables, rewrite_query(q))
        assert original.same_rows(denormed), q.name
