"""E6: the 13 published LINEORDER selectivities (Section 3).

At small scale factors the rarest queries select a handful of rows, so
the assertion uses a Poisson-style tolerance: the observed count must lie
within a generous band around ``paper_selectivity * num_rows``.
"""

import math

import pytest

from repro.reference import selected_positions
from repro.ssb import PAPER_SELECTIVITIES, all_queries
from repro.ssb.queries import FLIGHT_OF


@pytest.mark.parametrize("query", all_queries(), ids=lambda q: q.name)
def test_selectivity_matches_paper(ssb_data, query):
    n = ssb_data.lineorder.num_rows
    observed = len(selected_positions(ssb_data.tables, query))
    expected = PAPER_SELECTIVITIES[query.name] * n
    # 5-sigma Poisson band plus a 25% modelling allowance
    slack = 5 * math.sqrt(max(expected, 1)) + 0.25 * expected + 2
    assert abs(observed - expected) <= slack, (
        f"{query.name}: observed {observed}, expected {expected:.1f}"
    )


def test_flight_assignment():
    assert FLIGHT_OF["Q1.3"] == 1
    assert FLIGHT_OF["Q2.2"] == 2
    assert FLIGHT_OF["Q3.4"] == 3
    assert FLIGHT_OF["Q4.1"] == 4


def test_selectivities_ordered_within_flights():
    """Within each flight the paper's queries get successively more
    selective (flight 3's four queries strictly so)."""
    s = PAPER_SELECTIVITIES
    assert s["Q1.1"] > s["Q1.2"] > s["Q1.3"]
    assert s["Q2.1"] > s["Q2.2"] > s["Q2.3"]
    assert s["Q3.1"] > s["Q3.2"] > s["Q3.3"] > s["Q3.4"]
    assert s["Q4.1"] > s["Q4.2"] > s["Q4.3"]
