"""The command-line entry points, driven in-process."""

import pytest

from repro.bench.__main__ import main as bench_main
from repro.shell import main as shell_main
from repro.ssb.validate import main as validate_main


def test_bench_single_figure(capsys):
    assert bench_main(["figure7", "--sf", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "tICL" in out and "Ticl" in out
    assert "shape comparison" in out
    assert "averages" in out  # bar chart


def test_bench_storage(capsys):
    assert bench_main(["storage", "--sf", "0.004"]) == 0
    assert "fact heap" in capsys.readouterr().out


def test_bench_breakdown(capsys):
    assert bench_main(["breakdown", "--sf", "0.004", "--query", "Q1.1",
                       "--config", "ticL", "--design", "MV"]) == 0
    out = capsys.readouterr().out
    assert "column store [ticL]" in out
    assert "row store [MV]" in out
    assert "TOTAL" in out


def test_bench_report_to_file(tmp_path, capsys):
    target = tmp_path / "results.md"
    assert bench_main(["report", "--sf", "0.004", "--out",
                       str(target)]) == 0
    text = target.read_text()
    assert "Figure 5" in text and "Storage report" in text


def test_bench_verify_flag(capsys):
    assert bench_main(["figure7", "--sf", "0.004", "--verify"]) == 0


def test_bench_rejects_unknown_target():
    with pytest.raises(SystemExit):
        bench_main(["figure9"])


def test_fault_profile_list_is_informational(capsys):
    """``--fault-profile list`` is an informational exit: stdout, code 0,
    no target required, no data generated."""
    assert bench_main(["--fault-profile", "list"]) == 0
    captured = capsys.readouterr()
    assert captured.err == ""
    for name in ("transient", "bitflip", "torn", "mixed", "persistent"):
        assert name in captured.out


def test_fault_profile_list_ignores_target(capsys):
    # the listing wins even when a figure target is also present
    assert bench_main(["figure5", "--fault-profile", "list"]) == 0
    assert "transient" in capsys.readouterr().out


def test_bench_rejects_bad_shards():
    with pytest.raises(SystemExit):
        bench_main(["figure5", "--sf", "0.004", "--shards", "0"])


def test_bench_runs_sharded(capsys):
    assert bench_main(["figure5", "--sf", "0.004", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "2 shards" in out
    assert "Figure 5" in out


def test_bench_requires_target_without_check():
    with pytest.raises(SystemExit):
        bench_main(["--sf", "0.004"])


def test_bench_trace_json(tmp_path, capsys):
    import json

    path = tmp_path / "traces.jsonl"
    assert bench_main(["figure7", "--sf", "0.004",
                       "--trace-json", str(path)]) == 0
    from repro.core.config import CONFIG_LADDER
    from repro.ssb.queries import ALL_QUERIES

    lines = path.read_text().splitlines()
    # one record per ladder config per query
    assert len(lines) == len(CONFIG_LADDER) * len(ALL_QUERIES)
    for line in lines:
        record = json.loads(line)
        assert record["schema"] == "repro-trace-v1"
        assert record["figure"] == "figure7"
        assert record["engine"] == "colstore"
        assert record["spans"]["name"] == "query"
        child_total = sum(c["total_seconds"]
                          for c in record["spans"]["children"])
        assert child_total <= record["total_seconds"] + 1e-9


def test_bench_baseline_roundtrip(tmp_path, capsys):
    import json

    path = tmp_path / "baseline.json"
    assert bench_main(["figure5", "--sf", "0.004",
                       "--write-baseline", str(path)]) == 0
    record = json.loads(path.read_text())
    assert record["schema"] == "repro-baseline-v1"
    assert record["figure"] == "figure5"
    # a clean re-run is within tolerance (deterministic, so identical)
    assert bench_main(["--check-baseline", str(path)]) == 0
    assert "baseline check passed" in capsys.readouterr().out
    # shrink the committed numbers ~5%: the fresh run now regresses
    for series in record["series"].values():
        for query in series:
            series[query] *= 0.95
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(record))
    assert bench_main(["--check-baseline", str(tampered)]) == 1
    assert "BASELINE CHECK FAILED" in capsys.readouterr().out


def test_bench_check_baseline_conflicting_flags(tmp_path):
    import json

    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "schema": "repro-baseline-v1", "figure": "figure5",
        "scale_factor": 0.004, "workers": 1,
        "series": {"RS": {"Q1.1": 1.0}},
    }))
    with pytest.raises(SystemExit):
        bench_main(["figure7", "--check-baseline", str(path)])
    with pytest.raises(SystemExit):
        bench_main(["--sf", "0.05", "--check-baseline", str(path)])
    # the artifact predates sharding, so it reads as shards=1 and a
    # sharded check against it is a conflict, not a silent reinterpretation
    with pytest.raises(SystemExit):
        bench_main(["--shards", "4", "--check-baseline", str(path)])


def test_bench_baseline_stamps_shards(tmp_path, capsys):
    import json

    path = tmp_path / "baseline.json"
    assert bench_main(["figure5", "--sf", "0.004", "--shards", "2",
                       "--write-baseline", str(path)]) == 0
    record = json.loads(path.read_text())
    assert record["shards"] == 2
    # the check re-runs at the stamped shard count and passes
    assert bench_main(["--check-baseline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "2 shards" in out
    assert "baseline check passed" in out
    with pytest.raises(SystemExit):
        bench_main(["--shards", "4", "--check-baseline", str(path)])


def test_bench_baseline_stamps_writes(tmp_path, capsys):
    import json

    path = tmp_path / "baseline.json"
    assert bench_main(["figure5", "--sf", "0.004", "--writes", "on",
                       "--write-baseline", str(path)]) == 0
    record = json.loads(path.read_text())
    assert record["writes"] is True
    # the check re-runs with the write path enabled and passes: a
    # writes-on engine with no pending delta is byte-identical
    assert bench_main(["--check-baseline", str(path)]) == 0
    out = capsys.readouterr().out
    assert "writes on" in out
    assert "baseline check passed" in out
    with pytest.raises(SystemExit):
        bench_main(["--writes", "off", "--check-baseline", str(path)])


def test_bench_pre_write_artifact_reads_as_writes_off(tmp_path):
    import json

    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "schema": "repro-baseline-v1", "figure": "figure5",
        "scale_factor": 0.004, "workers": 1,
        "series": {"RS": {"Q1.1": 1.0}},
    }))
    # the artifact predates the write store, so it reads as writes-off
    # and a writes-on check against it is a conflict, not a silent
    # reinterpretation
    with pytest.raises(SystemExit):
        bench_main(["--writes", "on", "--check-baseline", str(path)])


def test_bench_check_baseline_bad_artifact(tmp_path):
    from repro.errors import BenchmarkError

    path = tmp_path / "bad.json"
    path.write_text("{\"schema\": \"something-else\"}")
    with pytest.raises(BenchmarkError):
        bench_main(["--check-baseline", str(path)])


def test_bench_write_baseline_needs_figure_target():
    with pytest.raises(SystemExit):
        bench_main(["storage", "--sf", "0.004",
                    "--write-baseline", "/tmp/x.json"])


def test_validate_cli(capsys):
    assert validate_main(["--sf", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "9/9 checks passed" in out


def test_shell_main_scripted(monkeypatch, capsys):
    lines = iter([
        "\\queries",
        "Q1.1",
        "SELECT count(*) AS n",          # multi-line SQL ...
        "FROM lineorder;",               # ... terminated by ';'
        "\\quit",
    ])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
    assert shell_main(["--sf", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "Q4.3" in out            # \queries listing
    assert "ms simulated" in out    # Q1.1 ran
    assert "n" in out               # the count query printed
    assert "bye" in out


def test_shell_main_eof(monkeypatch, capsys):
    def raise_eof(prompt=""):
        raise EOFError

    monkeypatch.setattr("builtins.input", raise_eof)
    assert shell_main(["--sf", "0.004"]) == 0
