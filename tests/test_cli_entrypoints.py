"""The command-line entry points, driven in-process."""

import pytest

from repro.bench.__main__ import main as bench_main
from repro.shell import main as shell_main
from repro.ssb.validate import main as validate_main


def test_bench_single_figure(capsys):
    assert bench_main(["figure7", "--sf", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "tICL" in out and "Ticl" in out
    assert "shape comparison" in out
    assert "averages" in out  # bar chart


def test_bench_storage(capsys):
    assert bench_main(["storage", "--sf", "0.004"]) == 0
    assert "fact heap" in capsys.readouterr().out


def test_bench_breakdown(capsys):
    assert bench_main(["breakdown", "--sf", "0.004", "--query", "Q1.1",
                       "--config", "ticL", "--design", "MV"]) == 0
    out = capsys.readouterr().out
    assert "column store [ticL]" in out
    assert "row store [MV]" in out
    assert "TOTAL" in out


def test_bench_report_to_file(tmp_path, capsys):
    target = tmp_path / "results.md"
    assert bench_main(["report", "--sf", "0.004", "--out",
                       str(target)]) == 0
    text = target.read_text()
    assert "Figure 5" in text and "Storage report" in text


def test_bench_verify_flag(capsys):
    assert bench_main(["figure7", "--sf", "0.004", "--verify"]) == 0


def test_bench_rejects_unknown_target():
    with pytest.raises(SystemExit):
        bench_main(["figure9"])


def test_validate_cli(capsys):
    assert validate_main(["--sf", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "9/9 checks passed" in out


def test_shell_main_scripted(monkeypatch, capsys):
    lines = iter([
        "\\queries",
        "Q1.1",
        "SELECT count(*) AS n",          # multi-line SQL ...
        "FROM lineorder;",               # ... terminated by ';'
        "\\quit",
    ])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
    assert shell_main(["--sf", "0.004"]) == 0
    out = capsys.readouterr().out
    assert "Q4.3" in out            # \queries listing
    assert "ms simulated" in out    # Q1.1 ran
    assert "n" in out               # the count query printed
    assert "bye" in out


def test_shell_main_eof(monkeypatch, capsys):
    def raise_eof(prompt=""):
        raise EOFError

    monkeypatch.setattr("builtins.input", raise_eof)
    assert shell_main(["--sf", "0.004"]) == 0
