"""Scrubber tests: audit detects every injected corruption; repair
rebuilds pages byte-identically from redundant projections."""

import numpy as np
import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.scrub import ScrubReport, audit_disk, main, scrub_store
from repro.simio.faults import FaultInjector, FaultPolicy
from repro.ssb.queries import query_by_name


@pytest.fixture()
def store(ssb_data):
    """A private column store whose disk the tests may corrupt."""
    return CStore(ssb_data)


def _all_corrupt(files):
    return sorted((h.name, p) for h in files for p in h.corrupt)


def test_audit_clean_disk(store):
    report = scrub_store(store, repair=False)
    assert report.clean
    assert report.corrupt_pages == 0
    assert "all page checksums verify" in report.render()


def test_audit_detects_every_injected_corruption(store):
    inj = FaultInjector(11, [FaultPolicy(file_glob="lineorder.*",
                                         bitflip_rate=0.3, torn_rate=0.1)])
    log = inj.install(store.disk)
    assert len(log) > 0
    files = audit_disk(store.disk)
    assert _all_corrupt(files) == sorted((n, p) for n, p, _kind in log)


def test_repair_from_sibling_projection(store):
    oracle = store.execute(query_by_name("Q1.1"),
                           ExecutionConfig.baseline()).result
    # corrupt every page of one column at one level; the other level
    # (same sort keys, same position space) serves as donor
    inj = FaultInjector(4, [FaultPolicy(
        file_glob="lineorder.max.*.quantity", bitflip_rate=1.0)])
    log = inj.install(store.disk)
    assert len(log) > 0
    report = scrub_store(store, repair=True)
    assert report.corrupt_pages == len(log)
    assert report.repaired_pages == len(log)
    assert report.unrepairable_pages == 0
    # repaired pages verify again and queries are byte-identical
    assert scrub_store(store, repair=False).clean
    after = store.execute(query_by_name("Q1.1"),
                          ExecutionConfig.baseline()).result
    assert after.rows == oracle.rows


def test_repair_string_column_across_domains(store):
    """Dictionary-coded (MAX) and expanded (NONE) string columns repair
    each other across the domain conversion."""
    inj = FaultInjector(6, [
        FaultPolicy(file_glob="customer.max.*.region", bitflip_rate=1.0),
        FaultPolicy(file_glob="supplier.none.*.region", torn_rate=1.0),
    ])
    log = inj.install(store.disk)
    assert len(log) >= 2
    report = scrub_store(store)
    assert report.repaired_pages == len(log)
    assert report.unrepairable_pages == 0
    assert scrub_store(store, repair=False).clean


def test_unrepairable_when_both_levels_corrupt(store):
    inj = FaultInjector(2, [FaultPolicy(file_glob="lineorder.*.discount",
                                        bitflip_rate=1.0)])
    log = inj.install(store.disk)
    assert len(log) >= 2  # both levels hit
    report = scrub_store(store)
    assert report.repaired_pages == 0
    assert report.unrepairable_pages == len(log)
    assert "UNREPAIRABLE" in report.render()


def test_repair_lifts_quarantine(store):
    inj = FaultInjector(4, [FaultPolicy(
        file_glob="lineorder.max.*.quantity", bitflip_rate=1.0)])
    log = inj.install(store.disk)
    name, page_no, _kind = log[0]
    # drive the page into quarantine through the read path
    from repro.errors import ChecksumError

    with pytest.raises(ChecksumError):
        store.pool.read_page(name, page_no)
    assert store.disk.is_quarantined(name, page_no)
    scrub_store(store)
    assert not store.disk.is_quarantined(name, page_no)
    assert store.pool.read_page(name, page_no)  # readable again


def test_cli_main_audit_only(capsys):
    code = main(["--sf", "0.004", "--fault-profile", "bitflip",
                 "--fault-seed", "3", "--no-repair"])
    out = capsys.readouterr().out
    assert "scrubbed" in out
    assert code in (0, 1)


def test_cli_main_repairs(capsys):
    code = main(["--sf", "0.004", "--fault-profile", "bitflip",
                 "--fault-seed", "3"])
    out = capsys.readouterr().out
    assert "scrubbed" in out
    assert code == 0  # every column file has a sibling-level donor
