"""Type system and schema tests."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.types import (
    ColumnType,
    Field,
    ROW_TUPLE_HEADER_BYTES,
    Schema,
    TypeKind,
    int32,
    int64,
    string,
    validate_int_array,
)


def test_type_constructors():
    assert int32().width == 4 and int32().is_integer
    assert int64().width == 8
    s = string(12)
    assert s.width == 12 and s.is_string
    assert s.numpy_dtype == np.dtype(np.int32)  # codes
    with pytest.raises(TypeMismatchError):
        ColumnType(TypeKind.STRING, 0)


def test_field_requires_name():
    with pytest.raises(SchemaError):
        Field("", int32())


def _schema():
    return Schema.of(("a", int32()), ("b", string(5)), ("c", int64()))


def test_schema_lookup_and_order():
    s = _schema()
    assert s.names == ["a", "b", "c"]
    assert s.position("b") == 1
    assert s.type_of("c") == int64()
    assert "a" in s and "z" not in s
    assert len(s) == 3
    with pytest.raises(SchemaError):
        s.field("z")


def test_schema_duplicate_rejected():
    with pytest.raises(SchemaError):
        Schema.of(("a", int32()), ("a", int64()))


def test_schema_project_concat_rename():
    s = _schema()
    p = s.project(["c", "a"])
    assert p.names == ["c", "a"]
    extended = s.concat(Schema.of(("d", int32())))
    assert extended.names == ["a", "b", "c", "d"]
    renamed = s.rename({"a": "alpha"})
    assert renamed.names == ["alpha", "b", "c"]


def test_schema_row_width():
    assert _schema().row_width == 4 + 5 + 8
    assert ROW_TUPLE_HEADER_BYTES == 8


def test_schema_equality_and_hash():
    assert _schema() == _schema()
    assert hash(_schema()) == hash(_schema())
    assert _schema() != Schema.of(("a", int32()))


def test_validate_int_array():
    arr = validate_int_array(np.array([1, 2], dtype=np.int64), int32())
    assert arr.dtype == np.int32
    with pytest.raises(TypeMismatchError):
        validate_int_array(np.array([2**40]), int32())
    with pytest.raises(TypeMismatchError):
        validate_int_array(np.array([1.5]), int32())
    # already correct dtype passes through unchanged
    src = np.array([3], dtype=np.int32)
    assert validate_int_array(src, int32()) is src
