"""The exception hierarchy contract: every public error is a ReproError,
so ``except ReproError`` at an API boundary is sound."""

import inspect

import pytest

from repro import errors
from repro.errors import (
    AdmissionError,
    BreakerOpenError,
    ChecksumError,
    CorruptPageError,
    DeadlineError,
    QueryCancelledError,
    ReproError,
    ScrubError,
    ServeError,
    ServiceError,
    ShedError,
    StorageError,
    TransientIOError,
)


def _public_error_classes():
    return [
        obj for _name, obj in vars(errors).items()
        if inspect.isclass(obj) and issubclass(obj, Exception)
    ]


def test_every_public_error_is_a_repro_error():
    classes = _public_error_classes()
    assert len(classes) >= 15  # the hierarchy, not an empty module
    for cls in classes:
        assert issubclass(cls, ReproError), cls.__name__


def test_storage_error_family():
    for cls in (ChecksumError, TransientIOError, CorruptPageError,
                ScrubError):
        assert issubclass(cls, StorageError)
        assert issubclass(cls, ReproError)


@pytest.mark.parametrize("cls", [ChecksumError, CorruptPageError])
def test_page_errors_carry_location(cls):
    error = cls("proj.col", 7, 3, detail="why")
    assert error.file == "proj.col"
    assert error.page_no == 7
    assert error.disk_no == 3
    assert "proj.col" in str(error)
    assert "7" in str(error)
    assert "3" in str(error)
    assert "why" in str(error)


def test_transient_error_carries_location():
    error = TransientIOError("proj.col", 5)
    assert error.file == "proj.col"
    assert error.page_no == 5
    assert "transient" in str(error)


def test_serve_error_family():
    for cls in (AdmissionError, DeadlineError, ShedError,
                QueryCancelledError, BreakerOpenError):
        assert issubclass(cls, ServeError)
        assert issubclass(cls, ReproError)
    # the pre-resilience name keeps working for existing callers
    assert ServiceError is ServeError


def test_cancelled_error_carries_reason():
    error = QueryCancelledError("wall deadline expired mid-execution")
    assert error.reason == "wall deadline expired mid-execution"
    assert "cancelled" in str(error)


def test_breaker_open_error_carries_scope():
    error = BreakerOpenError(("cs", "lineorder"), detail="still cooling")
    assert error.scope == ("cs", "lineorder")
    assert "lineorder" in str(error)
    assert "still cooling" in str(error)
