"""The MVCC acceptance bar: after an interleaved insert/delete mix,
all 13 SSBM queries on both engines — at shards 1 and 4, workers 1 and
4 — return rows identical to the reference engine over the effective
tables, both before the tuple mover runs (snapshot merge reads) and
after it drains the WOS (rebuilt base pages)."""

from dataclasses import replace

import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.plan.logical import ColumnRef, CompareOp, Comparison
from repro.reference import execute as reference_execute
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.simio.stats import QueryStats
from repro.ssb.queries import ALL_QUERIES, query_by_name
from repro.write.store import WriteStore
from tests.write.dml import clone_rows, write_mix


@pytest.fixture(scope="module")
def oracle(wdata):
    """Reference rows per query over the effective tables of the mix."""
    mirror = WriteStore(dict(wdata.tables))
    inserts, predicates = write_mix(wdata)
    mirror.insert("lineorder", inserts, QueryStats())
    mirror.delete("lineorder", predicates, QueryStats())
    effective = mirror.effective_tables()
    return {q.name: reference_execute(effective, q).rows
            for q in ALL_QUERIES}


def _apply_mix(engine, wdata):
    inserts, predicates = write_mix(wdata)
    engine.insert("lineorder", inserts)
    engine.delete("lineorder", predicates)


@pytest.mark.parametrize("shards,workers",
                         [(1, 1), (1, 4), (4, 1), (4, 4)])
def test_cstore_snapshot_reads_match_reference(wdata, oracle, shards,
                                               workers):
    store = CStore(wdata)
    _apply_mix(store, wdata)
    config = replace(ExecutionConfig.baseline(), writes=True,
                     shards=shards, workers=workers)
    for query in ALL_QUERIES:
        run = store.execute(query, config)
        assert run.result.rows == oracle[query.name], query.name
        assert run.stats.delta_rows_merged > 0, query.name
    pending = store.pending_writes()
    assert store.move() == pending > 0
    assert store.pending_writes() == 0
    for query in ALL_QUERIES:
        run = store.execute(query, config)
        assert run.result.rows == oracle[query.name], query.name
        assert run.stats.delta_rows_merged == 0
        assert run.stats.journal_pages == 0


@pytest.mark.parametrize("shards", (1, 4))
def test_systemx_snapshot_reads_match_reference(wdata, oracle, shards):
    store = SystemX(wdata, designs=[DesignKind.TRADITIONAL],
                    shards=shards, writes=True)
    _apply_mix(store, wdata)
    for query in ALL_QUERIES:
        run = store.execute(query, DesignKind.TRADITIONAL)
        assert run.result.rows == oracle[query.name], query.name
        assert run.stats.delta_rows_merged > 0, query.name
    pending = store.pending_writes()
    assert store.move() == pending > 0
    assert store.pending_writes() == 0
    for query in ALL_QUERIES:
        run = store.execute(query, DesignKind.TRADITIONAL)
        assert run.result.rows == oracle[query.name], query.name
        assert run.stats.delta_rows_merged == 0


def test_interleaved_cycles_stay_row_identical(wdata):
    """Write → read → move → write again → read → move, engines and a
    mirror WriteStore marching in lockstep with the reference."""
    mirror = WriteStore(dict(wdata.tables))
    cs = CStore(wdata)
    rs = SystemX(wdata, designs=[DesignKind.TRADITIONAL], writes=True)
    config = replace(ExecutionConfig.baseline(), writes=True)
    queries = [query_by_name(n) for n in ("Q1.1", "Q2.1", "Q3.1", "Q4.1")]

    def check():
        effective = mirror.effective_tables()
        for query in queries:
            expected = reference_execute(effective, query).rows
            assert cs.execute(query, config).result.rows == expected, \
                query.name
            assert rs.execute(query,
                              DesignKind.TRADITIONAL).result.rows == \
                expected, query.name

    def apply(op, *args):
        results = {op(engine, *args) for engine in (cs, rs)}
        results.add(op(mirror, *args))
        assert len(results) == 1  # all three agree on rows affected

    inserts, predicates = write_mix(wdata)
    stats = QueryStats()
    apply(lambda t, r: t.insert("lineorder", r, stats)
          if t is mirror else t.insert("lineorder", r), inserts)
    check()
    apply(lambda t, p: t.delete("lineorder", p, stats)
          if t is mirror else t.delete("lineorder", p), predicates)
    check()
    assert cs.move() == rs.move() == mirror.pending_rows() > 0
    mirror.complete_move(mirror.effective_tables())
    check()

    # second round: a dimension insert plus fact rows referencing it
    new_customer = clone_rows(wdata.customer, 1, custkey=900001)
    new_facts = clone_rows(wdata.lineorder, 10, custkey=900001)
    for target in (cs, rs):
        target.insert("customer", new_customer)
        target.insert("lineorder", new_facts)
    mirror.insert("customer", new_customer, stats)
    mirror.insert("lineorder", new_facts, stats)
    check()
    more = [Comparison(ColumnRef("lineorder", "discount"),
                       CompareOp.GT, 8)]
    apply(lambda t, p: t.delete("lineorder", p, stats)
          if t is mirror else t.delete("lineorder", p), more)
    check()
    assert cs.move() == rs.move() == mirror.pending_rows() > 0
    mirror.complete_move(mirror.effective_tables())
    check()
    assert cs.pending_writes() == rs.pending_writes() == 0
