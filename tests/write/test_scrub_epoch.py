"""Scrub vs the write epoch: a sidecar that trails a pending delta is
*behind*, not drifted; after a tuple move the rebuilt sidecars carry the
merged epoch stamp, and repair/rewrite preserve it."""

import pytest

from repro.colstore.engine import CStore
from repro.scrub import scrub_store
from repro.simio.faults import FaultInjector, FaultPolicy
from repro.synopsis import split_stamp
from tests.write.dml import delete_predicates


@pytest.fixture
def store(wdata):
    return CStore(wdata)


def _sidecar_stamps(store):
    return {split_stamp(b"".join(store.disk.file(name).pages))[1]
            for name in store.disk.files() if name.endswith(".zm")}


def _moved(store):
    store.delete("lineorder", delete_predicates())
    store.move()
    return store


def test_clean_read_only_store_scrubs_clean(store):
    report = scrub_store(store)
    assert report.clean, report.render()
    assert report.stale_synopses == 0
    assert report.behind_delta == 0
    assert _sidecar_stamps(store) == {0}  # never stamped pre-write


def test_pending_delta_reads_as_behind_not_stale(store):
    store.delete("lineorder", delete_predicates())
    assert store.pending_writes() > 0
    report = scrub_store(store)
    assert report.clean, report.render()
    assert report.stale_synopses == 0, report.render()
    assert report.behind_delta > 0, report.render()
    assert "legitimately behind" in report.render()


def test_move_stamps_sidecars_and_scrubs_clean(store):
    _moved(store)
    report = scrub_store(store)
    assert report.clean, report.render()
    assert report.behind_delta == 0
    assert report.stale_synopses == 0
    assert _sidecar_stamps(store) == {store.write_epoch} == {1}


def test_corrupt_stamped_sidecar_repairs_byte_identically(store):
    _moved(store)
    log = FaultInjector(7, [FaultPolicy(file_glob="*.zm",
                                        bitflip_rate=0.6)]) \
        .install(store.disk)
    assert log, "the schedule corrupted no sidecar pages"
    report = scrub_store(store)
    assert report.repaired_pages == len(log), report.render()
    assert report.unrepairable_pages == 0, report.render()
    assert _sidecar_stamps(store) == {1}  # repair kept the stamp
    assert scrub_store(store, repair=False).clean


def test_drift_rewrite_preserves_stamp(store):
    _moved(store)
    victim = sorted(n for n in store.disk.files()
                    if n.endswith(".zm"))[0]
    page = bytearray(store.disk.file(victim).pages[0])
    page[0] ^= 0xFF  # a payload byte, not the epoch trailer
    store.disk.rewrite_page(victim, 0, bytes(page), charge=False)
    store.pool.invalidate(victim)
    report = scrub_store(store)
    assert report.stale_synopses >= 1, report.render()
    _, stamp = split_stamp(b"".join(store.disk.file(victim).pages))
    assert stamp == 1  # the rewrite re-derived payload, kept the stamp
    again = scrub_store(store)
    assert again.clean and again.stale_synopses == 0
