"""Cold-start recovery unit behavior: journal scan/replay, torn-tail
truncation, move roll-forward, crash-point injection through the
harness, and the journal edge cases (empty journal, recover-twice,
transient reads during replay)."""

import threading

import numpy as np
import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import (JournalTornError, SimulatedCrashError,
                          WriteContentionError)
from repro.reference import execute as reference_execute
from repro.simio.faults import (CRASH_AFTER_JOURNAL_APPEND,
                                CRASH_AFTER_MOVE_SWAP,
                                CRASH_BEFORE_JOURNAL_APPEND,
                                CRASH_BEFORE_MOVE_SWAP,
                                CRASH_MID_MOVE_SHADOW, CrashPolicy,
                                FaultInjector, FaultPolicy)
from repro.simio.stats import QueryStats
from repro.ssb.queries import query_by_name
from repro.write.journal import RedoJournal
from repro.write.recovery import CrashHarness, recover_store
from repro.write.store import WriteStore
from tests.write.dml import clone_rows, delete_predicates

Q1_1 = query_by_name("Q1.1")
WRITE_CONFIG = ExecutionConfig(writes=True)

NEW_COUNTERS = ("journal_replay_pages", "recovered_batches",
                "torn_tail_records")


def _columns_equal(left, right):
    for name in sorted(left):
        for col in left[name].columns():
            if not np.array_equal(col.data, right[name].column(col.name).data):
                return False
    return True


# -------------------------------------------------------------------- #
# journal edge cases (the satellite): empty journal, recover twice,
# transient reads during replay
# -------------------------------------------------------------------- #
def test_empty_journal_recovers_clean(wdata):
    engine = CStore(wdata)
    stats = QueryStats()
    report = engine.recover(stats=stats)
    assert report.clean
    assert report.records_scanned == 0
    assert report.epoch == 0
    for counter in NEW_COUNTERS:
        assert getattr(stats, counter) == 0


def test_recover_on_empty_write_store_journal(wdata):
    # an armed write store whose journal holds zero records: replay is a
    # no-op but still walks the (empty) journal cleanly
    ws = WriteStore(dict(wdata.tables))
    store, report = recover_store(dict(wdata.tables), ws.journal)
    assert report.clean
    assert store.epoch == 0
    assert not store.has_pending()


def test_recover_twice_is_idempotent(wdata):
    harness = CrashHarness(
        wdata, crashes=[CrashPolicy(CRASH_AFTER_JOURNAL_APPEND, at=3)])
    rows = clone_rows(wdata.lineorder, 6)
    assert harness.insert("lineorder", rows[:3]) == 3
    assert harness.delete("lineorder", delete_predicates()) > 0
    assert harness.insert("lineorder", rows[3:]) is None  # crash fired
    first = harness.crash_and_recover()
    once = harness.engine.snapshot_tables()
    epoch_once = harness.engine._writes.epoch
    # recover again from the already-truncated journal: same state, and
    # nothing left to truncate
    second = harness.engine.recover(
        harness.engine._writes.journal, harness.committed_lsn)
    assert second.torn_tail_records == 0
    assert second.records_scanned == \
        first.records_scanned - first.torn_tail_records
    assert harness.engine._writes.epoch == epoch_once
    assert _columns_equal(once, harness.engine.snapshot_tables())


def test_replay_retries_transient_journal_reads(wdata):
    # the restart injector keeps fault policies (budgets re-armed), so
    # replay itself hits transient reads and retries through them
    harness = CrashHarness(
        wdata, seed=11,
        crashes=[CrashPolicy(CRASH_AFTER_JOURNAL_APPEND, at=2)],
        policies=[FaultPolicy(file_glob="journal.redo",
                              transient_rate=1.0,
                              max_transient_failures=2)])
    rows = clone_rows(wdata.lineorder, 6)
    assert harness.insert("lineorder", rows[:3]) == 3
    assert harness.insert("lineorder", rows[3:]) is None  # crash fired
    stats = QueryStats()
    report = harness.crash_and_recover(stats=stats)
    assert report.recovered_batches == 1
    assert stats.io_retries > 0
    assert stats.retry_backoff_us > 0
    assert stats.journal_replay_pages > 0
    run = harness.engine.execute(Q1_1, WRITE_CONFIG)
    expected = reference_execute(
        harness.reference_store().effective_tables(), Q1_1).rows
    assert run.result.rows == expected


# -------------------------------------------------------------------- #
# torn tails and committed-LSN enforcement
# -------------------------------------------------------------------- #
def test_crash_after_append_truncates_unacked_tail(wdata):
    harness = CrashHarness(
        wdata, crashes=[CrashPolicy(CRASH_AFTER_JOURNAL_APPEND, at=2)])
    rows = clone_rows(wdata.lineorder, 6)
    assert harness.insert("lineorder", rows[:3]) == 3
    # the second batch reaches the journal but is never acknowledged
    assert harness.insert("lineorder", rows[3:]) is None
    journal = harness.engine._writes.journal
    assert journal.records == 2
    assert harness.committed_lsn == 1
    stats = QueryStats()
    report = harness.crash_and_recover(stats=stats)
    assert report.records_scanned == 2
    assert report.recovered_batches == 1
    assert report.torn_tail_records == 1
    assert stats.torn_tail_records == 1
    assert report.epoch == 1
    # unacked absent: only the acknowledged batch survives
    assert harness.engine._writes.pending_rows() == 3
    # the torn tail was physically truncated: the journal now holds
    # exactly the committed prefix
    assert harness.engine._writes.journal.records == 1


def test_crash_before_append_loses_nothing(wdata):
    harness = CrashHarness(
        wdata, crashes=[CrashPolicy(CRASH_BEFORE_JOURNAL_APPEND, at=2)])
    rows = clone_rows(wdata.lineorder, 6)
    assert harness.insert("lineorder", rows[:3]) == 3
    assert harness.insert("lineorder", rows[3:]) is None
    report = harness.crash_and_recover()
    # the crashed batch never reached the journal: no torn tail at all
    assert report.records_scanned == 1
    assert report.torn_tail_records == 0
    assert report.recovered_batches == 1
    assert harness.engine._writes.pending_rows() == 3


def test_missing_committed_record_raises_typed(wdata):
    ws = WriteStore(dict(wdata.tables))
    ws.insert("lineorder", clone_rows(wdata.lineorder, 3), QueryStats())
    ws.insert("lineorder", clone_rows(wdata.lineorder, 2), QueryStats())
    # simulate losing the whole journal tail below an acknowledged LSN
    ws.journal.truncate_pages(0)
    with pytest.raises(JournalTornError, match="LSN 2 was acknowledged"):
        recover_store(dict(wdata.tables), ws.journal, committed_lsn=2)


def test_write_store_recover_classmethod(wdata):
    ws = WriteStore(dict(wdata.tables))
    ws.insert("lineorder", clone_rows(wdata.lineorder, 4), QueryStats())
    ws.delete("lineorder", delete_predicates(), QueryStats())
    recovered = WriteStore.recover(dict(wdata.tables), ws.journal)
    assert recovered.last_recovery.recovered_batches == 2
    assert recovered.epoch == ws.epoch
    assert _columns_equal(ws.effective_tables(),
                          recovered.effective_tables())


# -------------------------------------------------------------------- #
# move crash points: shadow discard vs roll-forward
# -------------------------------------------------------------------- #
def test_mid_move_shadow_crash_discards_shadow(wdata):
    harness = CrashHarness(
        wdata, crashes=[CrashPolicy(CRASH_MID_MOVE_SHADOW)])
    rows = clone_rows(wdata.lineorder, 6)
    assert harness.insert("lineorder", rows) == 6
    pending = harness.engine._writes.pending_rows()
    assert harness.move() is None  # crash fired mid-shadow
    report = harness.crash_and_recover()
    # no move record ever reached the journal: the shadow is garbage,
    # the delta is still pending, nothing rolled forward
    assert report.moves_rolled_forward == 0
    assert report.horizon == 0
    assert harness.engine._writes.pending_rows() == pending


def test_before_move_swap_crash_discards_shadow(wdata):
    harness = CrashHarness(
        wdata, crashes=[CrashPolicy(CRASH_BEFORE_MOVE_SWAP)])
    rows = clone_rows(wdata.lineorder, 6)
    assert harness.insert("lineorder", rows) == 6
    assert harness.move() is None
    report = harness.crash_and_recover()
    assert report.moves_rolled_forward == 0
    assert harness.engine._writes.pending_rows() == 6


def test_after_move_swap_crash_rolls_forward(wdata):
    harness = CrashHarness(
        wdata, crashes=[CrashPolicy(CRASH_AFTER_MOVE_SWAP)])
    rows = clone_rows(wdata.lineorder, 6)
    assert harness.insert("lineorder", rows) == 6
    expected = reference_execute(
        harness.engine._writes.effective_tables(), Q1_1).rows
    # the move record is durable — the swap's commit point — but the
    # rebuilt pages and the in-memory swap died with the process
    assert harness.move() is None
    report = harness.crash_and_recover()
    assert report.moves_rolled_forward == 1
    assert report.horizon == 1
    assert harness.engine._writes.pending_rows() == 0
    # the roll-forward rebuilt base storage at the recovered epoch: the
    # read-only path answers exactly the pre-crash effective rows
    run = harness.engine.execute(Q1_1, ExecutionConfig.baseline())
    assert run.result.rows == expected


def test_crash_points_fire_exactly_once(wdata):
    injector = FaultInjector(
        0, [], crashes=[CrashPolicy(CRASH_BEFORE_JOURNAL_APPEND, at=1)])
    assert injector.take_crash(CRASH_BEFORE_JOURNAL_APPEND)
    assert not injector.take_crash(CRASH_BEFORE_JOURNAL_APPEND)
    assert not injector.crash_pending()


# -------------------------------------------------------------------- #
# the contention gate (the satellite's unit half)
# -------------------------------------------------------------------- #
def test_reentrant_batch_raises_contention(wdata):
    ws = WriteStore(dict(wdata.tables))
    rows = clone_rows(wdata.lineorder, 2)
    assert ws._apply_lock.acquire(blocking=False)
    try:
        with pytest.raises(WriteContentionError, match="mid-application"):
            ws.insert("lineorder", rows, QueryStats())
        with pytest.raises(WriteContentionError):
            ws.delete("lineorder", delete_predicates(), QueryStats())
    finally:
        ws._apply_lock.release()
    # once the in-flight batch finishes, the same writes are accepted
    assert ws.insert("lineorder", rows, QueryStats()) == 2


def test_concurrent_store_writers_see_typed_contention(wdata):
    # two raw threads race the un-serialized store: every batch either
    # lands atomically or raises the typed contention error — never a
    # partial or corrupted application
    ws = WriteStore(dict(wdata.tables))
    rows = clone_rows(wdata.lineorder, 20)
    outcomes = []
    barrier = threading.Barrier(2)

    def writer(batch):
        barrier.wait()
        for _ in range(20):
            try:
                outcomes.append(ws.insert("lineorder", batch,
                                          QueryStats()))
            except WriteContentionError:
                outcomes.append("contended")

    threads = [threading.Thread(target=writer, args=(rows[:10],)),
               threading.Thread(target=writer, args=(rows[10:],))]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    applied = [o for o in outcomes if o == 10]
    assert len(applied) + outcomes.count("contended") == 40
    assert ws.pending_rows() == 10 * len(applied)
    assert ws.epoch == len(applied)
