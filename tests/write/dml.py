"""Shared helpers for the write-path suites.

The string columns of the generated data carry *fixed* dictionary
domains, so arbitrary synthetic rows would be rejected at validation.
Insert batches are therefore built by cloning existing rows (decoding
dictionary codes back to strings), which also guarantees every foreign
key resolves.
"""

import numpy as np

from repro.plan.logical import ColumnRef, CompareOp, Comparison

#: The standard write mix: this many cloned fact inserts ...
INSERT_COUNT = 60
#: ... plus a delete of every fact row with quantity below this.
DELETE_BELOW_QUANTITY = 3


def clone_rows(table, count=None, indices=None, **overrides):
    """Rows of ``table`` as insert dicts with decoded strings.

    Either the first ``count`` rows or the explicit ``indices``;
    ``overrides`` replaces named column values in every clone.
    """
    if indices is None:
        indices = range(count)
    rows = []
    for i in indices:
        row = {}
        for col in table.columns():
            value = col.data[i]
            if col.dictionary is not None:
                row[col.name] = col.dictionary.decode(
                    np.array([value]))[0]
            else:
                row[col.name] = int(value)
        row.update(overrides)
        rows.append(row)
    return rows


def delete_predicates():
    return [Comparison(ColumnRef("lineorder", "quantity"),
                       CompareOp.LT, DELETE_BELOW_QUANTITY)]


def write_mix(data):
    """(insert rows, delete predicates) for the standard mix."""
    return clone_rows(data.lineorder, INSERT_COUNT), delete_predicates()
