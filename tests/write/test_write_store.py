"""WriteStore unit behavior: validation, FK rules, MVCC intervals,
journaling, the opt-in gates, and read-only ledger identity."""

import dataclasses

import numpy as np
import pytest

from repro.colstore.engine import CStore
from repro.core.config import ExecutionConfig
from repro.errors import IntegrityError, SnapshotTooOldError, WriteError
from repro.plan.logical import ColumnRef, CompareOp, Comparison
from repro.rowstore.designs import DesignKind
from repro.rowstore.engine import SystemX
from repro.simio.stats import QueryStats
from repro.ssb.queries import query_by_name
from repro.write.store import WriteStore
from tests.write.dml import clone_rows, delete_predicates

Q1_1 = query_by_name("Q1.1")


@pytest.fixture
def ws(wdata):
    return WriteStore(dict(wdata.tables))


# -------------------------------------------------------------------- #
# accepted writes: epochs, journal, pending tally
# -------------------------------------------------------------------- #
def test_insert_bumps_epoch_and_journals(ws, wdata):
    rows = clone_rows(wdata.lineorder, 5)
    stats = QueryStats()
    assert ws.insert("lineorder", rows, stats) == 5
    assert ws.epoch == 1
    assert ws.pending_rows() == 5
    assert ws.journal.records == 1
    assert stats.journal_pages > 0
    assert ws.journal.num_pages == stats.journal_pages


def test_delete_marks_base_positions(ws, wdata):
    stats = QueryStats()
    expected = int((wdata.lineorder.column("quantity").data < 3).sum())
    assert expected > 0
    deleted = ws.delete("lineorder", delete_predicates(), stats)
    assert deleted == expected
    assert ws.pending_rows() == expected
    assert ws.epoch == 1
    assert stats.journal_pages > 0
    # idempotent: the same predicate now matches nothing visible
    assert ws.delete("lineorder", delete_predicates(), QueryStats()) == 0
    assert ws.epoch == 1  # a no-op delete burns no epoch


def test_delete_annihilates_wos_inserts(ws, wdata):
    quantity = wdata.lineorder.column("quantity").data
    low = np.flatnonzero(quantity < 3)[:5]
    assert len(low) == 5
    ws.insert("lineorder", clone_rows(wdata.lineorder, indices=low),
              QueryStats())
    base_hits = int((quantity < 3).sum())
    deleted = ws.delete("lineorder", delete_predicates(), QueryStats())
    # the delete hits the 5 buffered clones too ...
    assert deleted == base_hits + 5
    # ... and annihilates them: pending is the NET row count
    assert ws.pending_rows() == base_hits


def test_failed_insert_is_all_or_nothing(ws, wdata):
    good, bad = clone_rows(wdata.lineorder, 2)
    bad["custkey"] = 987654321  # references no dimension row
    with pytest.raises(IntegrityError, match="references no live"):
        ws.insert("lineorder", [good, bad], QueryStats())
    assert ws.epoch == 0
    assert ws.pending_rows() == 0
    assert ws.journal.records == 0
    assert not ws.has_pending()


# -------------------------------------------------------------------- #
# validation and foreign-key rules
# -------------------------------------------------------------------- #
def test_insert_schema_mismatch(ws, wdata):
    row = clone_rows(wdata.lineorder, 1)[0]
    missing = dict(row)
    del missing["quantity"]
    with pytest.raises(IntegrityError, match="missing \\['quantity'\\]"):
        ws.insert("lineorder", [missing], QueryStats())
    extra = dict(row, nosuch=1)
    with pytest.raises(IntegrityError, match="unexpected \\['nosuch'\\]"):
        ws.insert("lineorder", [extra], QueryStats())


def test_insert_type_and_domain_checks(ws, wdata):
    row = clone_rows(wdata.customer, 1, custkey=900001)[0]
    with pytest.raises(IntegrityError, match="expected an integer"):
        ws.insert("customer", [dict(row, custkey="1")], QueryStats())
    with pytest.raises(IntegrityError, match="expected a string"):
        ws.insert("customer", [dict(row, city=7)], QueryStats())
    with pytest.raises(IntegrityError, match="fixed string domain"):
        ws.insert("customer", [dict(row, city="Atlantis")], QueryStats())
    with pytest.raises(IntegrityError, match="does not fit"):
        ws.insert("customer", [dict(row, custkey=2 ** 62)], QueryStats())
    with pytest.raises(IntegrityError, match="expected an integer"):
        ws.insert("customer", [dict(row, custkey=True)], QueryStats())


def test_fact_insert_requires_live_dimension_keys(ws, wdata):
    row = clone_rows(wdata.lineorder, 1, partkey=987654)[0]
    with pytest.raises(IntegrityError,
                       match="partkey=987654 references no live"):
        ws.insert("lineorder", [row], QueryStats())


def test_dimension_insert_requires_fresh_key(ws, wdata):
    taken = int(wdata.supplier.column("suppkey").data[0])
    row = clone_rows(wdata.supplier, 1, suppkey=taken)[0]
    with pytest.raises(IntegrityError, match="duplicate key"):
        ws.insert("supplier", [row], QueryStats())
    fresh = clone_rows(wdata.supplier, 1, suppkey=900001)[0]
    with pytest.raises(IntegrityError, match="duplicate key"):
        ws.insert("supplier", [fresh, dict(fresh)], QueryStats())


def test_dimension_delete_restricted_while_referenced(ws, wdata):
    referenced = int(wdata.lineorder.column("custkey").data[0])
    with pytest.raises(IntegrityError, match="RESTRICTed"):
        ws.delete("customer",
                  [Comparison(ColumnRef("customer", "custkey"),
                              CompareOp.EQ, referenced)],
                  QueryStats())


def test_unreferenced_dimension_delete_allowed(ws, wdata):
    fresh = clone_rows(wdata.customer, 1, custkey=900001)[0]
    ws.insert("customer", [fresh], QueryStats())
    # a WOS fact row referencing the WOS dimension row RESTRICTs it
    fact = clone_rows(wdata.lineorder, 1, custkey=900001)[0]
    ws.insert("lineorder", [fact], QueryStats())
    key_pred = [Comparison(ColumnRef("customer", "custkey"),
                           CompareOp.EQ, 900001)]
    with pytest.raises(IntegrityError, match="RESTRICTed: buffered"):
        ws.delete("customer", key_pred, QueryStats())
    ws.delete("lineorder",
              [Comparison(ColumnRef("lineorder", "custkey"),
                          CompareOp.EQ, 900001)], QueryStats())
    assert ws.delete("customer", key_pred, QueryStats()) == 1


# -------------------------------------------------------------------- #
# MVCC snapshots
# -------------------------------------------------------------------- #
def test_visibility_pins_an_epoch(ws, wdata):
    clean = ws.pin()
    ws.insert("lineorder", clone_rows(wdata.lineorder, 3), QueryStats())
    ws.delete("lineorder", delete_predicates(), QueryStats())
    old = ws.visibility(clean)
    assert not old.needs_merge and not old.needs_patching
    now = ws.visibility()
    assert now.needs_merge and now.needs_patching
    assert now.fact_wos.num_rows == 3
    assert int(now.fact_deleted.sum()) > 0


def test_effective_table_untouched_returns_base_object(ws, wdata):
    ws.insert("lineorder", clone_rows(wdata.lineorder, 3), QueryStats())
    assert ws.effective_table("customer") is ws.base_table("customer")
    assert ws.effective_table("lineorder").num_rows == \
        wdata.lineorder.num_rows + 3


def test_snapshot_too_old_after_move(ws, wdata):
    ws.delete("lineorder", delete_predicates(), QueryStats())
    stale = ws.pin() - 1
    ws.complete_move(ws.effective_tables())
    assert not ws.has_pending()
    with pytest.raises(SnapshotTooOldError):
        ws.visibility(stale)
    with pytest.raises(SnapshotTooOldError):
        ws.effective_table("lineorder", stale)


# -------------------------------------------------------------------- #
# engine gates: pending writes demand the opt-in
# -------------------------------------------------------------------- #
def test_cstore_refuses_read_only_config_when_dirty(wdata):
    store = CStore(wdata)
    store.delete("lineorder", delete_predicates())
    with pytest.raises(WriteError, match="pending writes"):
        store.execute(Q1_1, ExecutionConfig.baseline())
    config = dataclasses.replace(ExecutionConfig.baseline(), writes=True)
    run = store.execute(Q1_1, config)
    assert run.result.rows


def test_systemx_refuses_without_engine_flag(wdata):
    store = SystemX(wdata, designs=[DesignKind.TRADITIONAL])
    store.delete("lineorder", delete_predicates())
    with pytest.raises(WriteError, match="pending writes"):
        store.execute(Q1_1, DesignKind.TRADITIONAL)
    opted = SystemX(wdata, designs=[DesignKind.TRADITIONAL], writes=True)
    opted.delete("lineorder", delete_predicates())
    assert opted.execute(Q1_1, DesignKind.TRADITIONAL).result.rows


def test_move_on_clean_engine_is_a_noop(wdata):
    store = CStore(wdata)
    stats = QueryStats()
    assert store.move(stats) == 0
    assert stats.moves == 0
    assert store.write_epoch == 0


# -------------------------------------------------------------------- #
# read-only ledger identity: the write path charges nothing until a
# write lands, and every write counter stays zero on read-only runs
# -------------------------------------------------------------------- #
def test_read_only_ledgers_byte_identical(wdata):
    plain = CStore(wdata)
    config = ExecutionConfig.baseline()
    base = plain.execute(Q1_1, config)
    mirrored = plain.execute(
        Q1_1, dataclasses.replace(config, writes=True))
    assert dataclasses.asdict(base.stats) == \
        dataclasses.asdict(mirrored.stats)
    for stats in (base.stats, mirrored.stats):
        assert stats.delta_rows_merged == 0
        assert stats.journal_pages == 0
        assert stats.moves == 0

    ro = SystemX(wdata, designs=[DesignKind.TRADITIONAL])
    rw = SystemX(wdata, designs=[DesignKind.TRADITIONAL], writes=True)
    left = ro.execute(Q1_1, DesignKind.TRADITIONAL)
    right = rw.execute(Q1_1, DesignKind.TRADITIONAL)
    assert dataclasses.asdict(left.stats) == \
        dataclasses.asdict(right.stats)
    assert left.stats.delta_rows_merged == 0
    assert left.stats.journal_pages == 0
