import pytest

from repro.ssb.generator import generate

#: SF 0.004 (24,000 fact rows) keeps the full MVCC acceptance matrix
#: fast while every query still touches multiple pages per column.
WRITE_SF = 0.004


@pytest.fixture(scope="package")
def wdata():
    return generate(WRITE_SF)
