"""Shell command dispatch tests (no terminal involved)."""

import pytest

from repro.shell import Shell


@pytest.fixture(scope="module")
def shell(ssb_data):
    # reuse the session-scoped dataset instead of generating a second
    # one per module — the shell only needs *a* database, not its own
    return Shell(data=ssb_data)


def test_empty_line(shell):
    assert shell.handle("") == ""


def test_help_and_queries(shell):
    assert "\\engine" in shell.handle("\\help")
    listing = shell.handle("\\queries")
    assert "Q1.1" in listing and "Q4.3" in listing


def test_sql_text_lookup(shell):
    assert "BETWEEN 1 AND 3" in shell.handle("\\sql Q1.1")
    assert "error" in shell.handle("\\sql Q9.9")


def test_run_ssb_query_by_name(shell):
    out = shell.handle("Q1.1")
    assert "column store [tICL]" in out
    assert "row store [T]" in out
    assert "ms simulated" in out


def test_run_adhoc_sql(shell):
    out = shell.handle(
        "SELECT sum(lo.revenue) AS revenue FROM lineorder AS lo "
        "WHERE lo.quantity < 10")
    assert "revenue" in out
    assert "ms simulated" in out


def test_engine_switching(shell):
    assert "engine set to cs" in shell.handle("\\engine cs")
    out = shell.handle("Q1.2")
    assert "row store" not in out
    shell.handle("\\engine both")
    assert "error" in shell.handle("\\engine turbo")


def test_config_switching(shell):
    assert "Ticl" in shell.handle("\\config Ticl")
    out = shell.handle("Q1.3")
    assert "column store [Ticl]" in out
    shell.handle("\\config tICL")
    assert "error" in shell.handle("\\config nope")


def test_design_switching(shell):
    assert "MV" in shell.handle("\\design MV")
    out = shell.handle("Q2.1")
    assert "row store [MV]" in out
    shell.handle("\\design T")
    assert "error" in shell.handle("\\design ZZ")


def test_explain(shell):
    out = shell.handle("\\explain Q3.1")
    assert "invisible join" in out
    assert "EXPLAIN" in out


def test_verify_toggle(shell):
    assert "off" in shell.handle("\\verify off")
    assert "on" in shell.handle("\\verify on")
    assert "error" in shell.handle("\\verify maybe")


def test_sql_error_is_reported(shell):
    out = shell.handle("SELECT FROM nothing")
    assert out.startswith("error:")


def test_unknown_command(shell):
    assert "unknown command" in shell.handle("\\frobnicate")


def test_quit(shell):
    assert shell.handle("\\quit") == "bye"
    assert shell.done


def test_error_line_is_structured(shell):
    out = shell.handle("SELECT FROM nothing")
    # one line: class name + message, no traceback
    assert "\n" not in out
    assert out.startswith("error: SqlParseError:") or \
        out.startswith("error: SqlBindError:")


def test_bad_limit_renders_on_one_line(shell):
    for sql in ("SELECT count(*) AS n FROM lineorder LIMIT 0",
                "SELECT count(*) AS n FROM lineorder LIMIT -2"):
        out = shell.handle(sql)
        assert "\n" not in out
        assert out.startswith("error: SqlParseError:")
        assert "LIMIT" in out


def test_dml_round_trip(ssb_data):
    # a fresh shell: DML mutates engine state; keep the module fixture
    # pristine for the read-only tests
    shell = Shell(data=ssb_data)
    total = ssb_data.lineorder.num_rows
    out = shell.handle("SELECT count(*) AS n FROM lineorder")
    assert str(total) in out and "INTERNAL ERROR" not in out
    out = shell.handle("DELETE FROM lineorder WHERE quantity < 3")
    assert "deleted" in out and "pending" in out
    deleted = int(out.split()[0])
    assert deleted > 0
    # the merge read sees the delta and still passes \verify's oracle
    out = shell.handle("SELECT count(*) AS n FROM lineorder")
    assert str(total - deleted) in out and "INTERNAL ERROR" not in out
    assert "drained" in shell.handle("\\move")
    out = shell.handle("SELECT count(*) AS n FROM lineorder")
    assert str(total - deleted) in out and "INTERNAL ERROR" not in out
    # a bad insert is one structured error line, store untouched
    out = shell.handle("INSERT INTO part (partkey) VALUES (900001)")
    assert out.startswith("error:") and "\n" not in out
    assert shell.handle("\\move") == "nothing pending; no-op"


def test_recover_command_replays_both_engines(ssb_data):
    shell = Shell(data=ssb_data)
    out = shell.handle("DELETE FROM lineorder WHERE quantity < 3")
    deleted = int(out.split()[0])
    assert deleted > 0
    out = shell.handle("\\recover")
    # one report line per engine, each rendering the replay tally
    assert "cs: recovery: 1 records scanned" in out
    assert "rs: recovery: 1 records scanned" in out
    assert "1 batches replayed" in out
    # the replayed delta still serves: reads pass the oracle check
    total = ssb_data.lineorder.num_rows
    post = shell.handle("SELECT count(*) AS n FROM lineorder")
    assert str(total - deleted) in post and "INTERNAL ERROR" not in post


def test_cache_toggle_and_stats(shell):
    assert "cache on" in shell.handle("\\cache on")
    first = shell.handle("Q1.2")
    second = shell.handle("Q1.2")
    assert "0.00 ms simulated" in second or "ms simulated" in second
    stats = shell.handle("\\serve stats")
    assert "exact_hits=" in stats and "session shell-cs" in stats
    assert "cache cleared" in shell.handle("\\cache clear")
    assert "cache off" in shell.handle("\\cache off")
    assert "error" in shell.handle("\\cache maybe")
    assert "error" in shell.handle("\\serve nonsense")
    assert first.splitlines()[:-2] == second.splitlines()[:-2]


def test_serve_stats_show_resilience(shell):
    shell.handle("\\engine cs")
    shell.handle("Q1.1")
    stats = shell.handle("\\serve stats")
    # the resilience section and per-scope breaker states round-trip
    assert "resilience:" in stats
    assert "shed=0" in stats
    assert "degraded_hits=0" in stats
    assert "breakers:" in stats
    # breaker scopes carry the shard count (sh1 = the unsharded stack)
    assert "cs/lineorder/1=closed" in stats


def test_cache_off_by_default(ssb_data):
    fresh = Shell(data=ssb_data)
    fresh.handle("\\engine cs")
    fresh.handle("Q1.1")
    fresh.handle("Q1.1")
    stats = fresh.service.serve_stats()
    assert stats["service"]["exact_hits"] == 0
    assert stats["service"]["engine_runs"] == 2


def test_query_against_quarantined_page(shell):
    disk = shell.cstore.disk
    victims = [name for name in disk.files()
               if name.startswith("lineorder.") and
               name.endswith(".quantity")]
    assert victims
    try:
        for name in victims:
            disk.quarantine(name, 0)
        out = shell.handle("Q1.1")
        assert out.startswith("error: CorruptPageError:")
        assert "\n" not in out
        assert "quantity" in out
    finally:
        for name in victims:
            disk.unquarantine(name, 0)
