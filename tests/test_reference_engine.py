"""Reference (oracle) engine tests on small hand-checkable data."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.plan.logical import (
    AggExpr,
    BinOp,
    ColumnRef,
    CompareOp,
    Comparison,
    InSet,
    OrderKey,
    RangePredicate,
    StarQuery,
)
from repro.reference import execute, selected_positions
from repro.reference.predicates import eval_predicate
from repro.storage.column import Column
from repro.storage.table import Table
from repro.types import int32


def _tables():
    fact = Table("f", [
        Column.from_ints("fk", [1, 2, 1, 3, 2], int32()),
        Column.from_ints("v", [10, 20, 30, 40, 50], int32()),
        Column.from_ints("w", [1, 1, 2, 2, 3], int32()),
    ])
    dim = Table("d", [
        Column.from_ints("fk", [1, 2, 3], int32()),
        Column.from_strings("name", ["ann", "bob", "cat"]),
    ])
    return {"f": fact, "d": dim}


def _query(predicates=(), group_by=(), order_by=(),
           agg=None):
    agg = agg or AggExpr("sum", ColumnRef("f", "v"), "total")
    return StarQuery("t", "f", {"fk": "d"}, tuple(predicates),
                     tuple(group_by), (agg,), tuple(order_by))


def test_no_predicates_sums_everything():
    result = execute(_tables(), _query())
    assert result.rows == [(150,)]


def test_fact_predicate():
    q = _query([Comparison(ColumnRef("f", "w"), CompareOp.EQ, 2)])
    assert execute(_tables(), q).rows == [(70,)]


def test_dimension_predicate():
    q = _query([Comparison(ColumnRef("d", "name"), CompareOp.EQ, "ann")])
    assert execute(_tables(), q).rows == [(40,)]


def test_group_by_dimension():
    q = _query(group_by=[ColumnRef("d", "name")],
               order_by=[OrderKey("name")])
    result = execute(_tables(), q)
    assert result.columns == ["name", "total"]
    assert result.rows == [("ann", 40), ("bob", 70), ("cat", 40)]


def test_group_by_fact_column():
    q = _query(group_by=[ColumnRef("f", "w")], order_by=[OrderKey("w")])
    assert execute(_tables(), q).rows == [(1, 30), (2, 70), (3, 50)]


def test_count_aggregate():
    q = _query(agg=AggExpr("count", ColumnRef("f", "v"), "n"))
    assert execute(_tables(), q).rows == [(5,)]


def test_expression_aggregate():
    agg = AggExpr("sum", BinOp("*", ColumnRef("f", "v"),
                               ColumnRef("f", "w")), "x")
    q = _query(agg=agg)
    assert execute(_tables(), q).rows == [(10 + 20 + 60 + 80 + 150,)]


def test_string_in_arithmetic_rejected():
    tables = _tables()
    agg = AggExpr("sum", ColumnRef("f", "v"), "x")
    q = StarQuery("t", "d", {}, (), (), (AggExpr(
        "sum", ColumnRef("d", "name"), "x"),))
    with pytest.raises(ExecutionError):
        execute(tables, q)


def test_empty_result_group_by():
    q = _query([Comparison(ColumnRef("f", "w"), CompareOp.GT, 99)],
               group_by=[ColumnRef("d", "name")])
    assert execute(_tables(), q).rows == []


def test_empty_result_scalar():
    q = _query([Comparison(ColumnRef("f", "w"), CompareOp.GT, 99)])
    assert execute(_tables(), q).rows == [(0,)]


def test_selected_positions():
    q = _query([InSet(ColumnRef("d", "name"), ("ann", "cat"))])
    positions = selected_positions(_tables(), q)
    assert positions.tolist() == [0, 2, 3]


def test_eval_predicate_range_on_strings():
    col = Column.from_strings("s", ["aa", "bb", "cc", "dd"])
    mask = eval_predicate(col, RangePredicate(ColumnRef("d", "s"),
                                              "bb", "cc"))
    assert mask.tolist() == [False, True, True, False]


def test_eval_predicate_missing_string_literal():
    col = Column.from_strings("s", ["aa"])
    mask = eval_predicate(col, Comparison(ColumnRef("d", "s"),
                                          CompareOp.EQ, "zz"))
    assert not mask.any()
    mask_lt = eval_predicate(col, Comparison(ColumnRef("d", "s"),
                                             CompareOp.LT, "zz"))
    assert mask_lt.all()
