"""Physical design construction and partition pruning tests."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.rowstore.designs import (
    BITMAPPED_FACT_COLUMNS,
    DesignKind,
    mv_columns_for_flight,
)
from repro.rowstore.partitioning import (
    partition_by_year,
    qualifying_years,
    year_of_datekey,
)
from repro.ssb.queries import query_by_name
from repro.ssb.schema import NUM_YEARS


def test_year_of_datekey():
    keys = np.array([19920101, 19981230])
    assert year_of_datekey(keys).tolist() == [1992, 1998]


def test_partition_by_year(ssb_data):
    parts = partition_by_year(ssb_data.lineorder)
    assert set(parts) <= set(range(1992, 1999))
    assert sum(p.num_rows for p in parts.values()) == \
        ssb_data.lineorder.num_rows
    for year, part in parts.items():
        years = year_of_datekey(part.column("orderdate").data)
        assert np.all(years == year)
        # parent sort order preserved inside each partition
        assert np.all(np.diff(part.column("orderdate").data) >= 0)


def test_qualifying_years_single_year(ssb_data):
    years = list(range(1992, 1999))
    q = query_by_name("Q1.1")  # d.year = 1993
    assert qualifying_years(ssb_data.date, q, years) == [1993]


def test_qualifying_years_range(ssb_data):
    years = list(range(1992, 1999))
    q = query_by_name("Q3.1")  # 1992..1997
    assert qualifying_years(ssb_data.date, q, years) == list(range(1992, 1998))


def test_qualifying_years_no_date_predicate(ssb_data):
    years = list(range(1992, 1999))
    q = query_by_name("Q2.1")
    assert qualifying_years(ssb_data.date, q, years) == years


def test_qualifying_years_yearmonth(ssb_data):
    years = list(range(1992, 1999))
    q = query_by_name("Q3.4")  # Dec1997
    assert qualifying_years(ssb_data.date, q, years) == [1997]


def test_mv_columns_per_flight():
    assert mv_columns_for_flight(1) == [
        "discount", "quantity", "orderdate", "extendedprice"]
    assert set(mv_columns_for_flight(2)) == {
        "partkey", "suppkey", "orderdate", "revenue"}
    assert set(mv_columns_for_flight(4)) == {
        "custkey", "suppkey", "partkey", "orderdate", "revenue",
        "supplycost"}
    with pytest.raises(PlanError):
        mv_columns_for_flight(9)


def test_artifacts_built(system_x):
    art = system_x.artifacts
    # dimensions always present
    for dim in ("customer", "supplier", "part", "date"):
        assert dim in art.heaps
    # traditional: one partition per year
    assert len(art.fact_partitions) == NUM_YEARS
    # bitmap design artifacts
    assert set(art.bitmaps) == set(BITMAPPED_FACT_COLUMNS)
    assert "lineorder" in art.heaps
    # vertical partitioning: one heap per fact column
    assert len(art.vp_heaps) == 17
    # index-only: fact + dimension B+Trees
    fact_trees = [k for k in art.btrees if k[0] == "lineorder"]
    assert len(fact_trees) == 17
    assert ("customer", "region") in art.btrees
    assert art.total_bytes() > 0


def test_vp_heap_carries_position_and_overhead(system_x, ssb_data):
    heap = system_x.artifacts.vp_heaps["quantity"]
    # 8-byte header + 4-byte position + 4-byte value
    assert heap.fmt.record_width == 16
    assert heap.num_rows == ssb_data.lineorder.num_rows


def test_dimension_attr_indexes_have_composite_keys(system_x):
    tree = system_x.artifacts.btrees[("customer", "region")]
    assert tree.has_secondary
    key_tree = system_x.artifacts.btrees[("customer", "custkey")]
    assert not key_tree.has_secondary


def test_execute_unbuilt_design_raises(ssb_data):
    from repro.rowstore.engine import SystemX

    engine = SystemX(ssb_data, designs=[DesignKind.TRADITIONAL])
    with pytest.raises(PlanError):
        engine.execute(query_by_name("Q1.1"), DesignKind.INDEX_ONLY)


def test_partition_pruning_reduces_io(system_x):
    q = query_by_name("Q1.1")
    pruned = system_x.execute(q, DesignKind.TRADITIONAL)
    full = system_x.execute(q, DesignKind.TRADITIONAL,
                            prune_partitions=False)
    assert pruned.result.same_rows(full.result)
    assert pruned.stats.bytes_read < full.stats.bytes_read / 3
    assert pruned.seconds < full.seconds
