"""Histogram and selectivity-estimation tests (+ properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.logical import (
    ColumnRef,
    CompareOp,
    Comparison,
    InSet,
    RangePredicate,
)
from repro.rowstore.statistics import (
    CatalogStatistics,
    Histogram,
    TableStatistics,
)
from repro.ssb import query_by_name
from repro.storage.column import Column
from repro.storage.table import Table
from repro.types import int32


def test_histogram_empty():
    h = Histogram.build(np.zeros(0, dtype=np.int64))
    assert h.num_rows == 0
    assert h.estimate_range(0, 100) == 0.0
    assert h.estimate_eq(5) == 0.0


def test_histogram_uniform_range():
    h = Histogram.build(np.arange(10_000, dtype=np.int64))
    assert h.estimate_range(0, 9_999) == pytest.approx(1.0, abs=0.01)
    assert h.estimate_range(0, 999) == pytest.approx(0.1, abs=0.02)
    assert h.estimate_range(-100, -1) == 0.0
    assert h.estimate_range(20_000, 30_000) == 0.0


def test_histogram_equality_estimate():
    values = np.repeat(np.arange(10, dtype=np.int64), 1000)
    h = Histogram.build(values)
    assert h.estimate_eq(3) == pytest.approx(0.1, rel=0.5)
    assert h.estimate_eq(99) == 0.0


def test_histogram_skew():
    # 90% of rows hold value 0; a heavy hitter must not break the edges
    values = np.concatenate([np.zeros(9000, dtype=np.int64),
                             np.arange(1, 1001, dtype=np.int64)])
    h = Histogram.build(values)
    assert h.estimate_eq(0) > 0.3
    assert h.estimate_range(1, 1000) < 0.5


def test_table_statistics_predicates(ssb_data):
    stats = TableStatistics(ssb_data.supplier)
    region_eq = Comparison(ColumnRef("supplier", "region"), CompareOp.EQ,
                           "ASIA")
    est = stats.estimate_predicate(region_eq)
    assert est == pytest.approx(0.2, rel=0.5)
    nation_in = InSet(ColumnRef("supplier", "nation"),
                      ("CHINA", "JAPAN"))
    assert stats.estimate_predicate(nation_in) == pytest.approx(
        2 / 25, rel=0.6)


def test_catalog_estimates_track_reality(ssb_data):
    stats = CatalogStatistics(ssb_data.tables)
    date_stats = stats.table("date")
    year_range = RangePredicate(ColumnRef("date", "year"), 1992, 1997)
    est = date_stats.estimate_predicate(year_range)
    actual = float((ssb_data.date.column("year").data <= 1997).sum()
                   ) / ssb_data.date.num_rows
    assert est == pytest.approx(actual, abs=0.1)


def test_conjunction_independence(ssb_data):
    stats = TableStatistics(ssb_data.date)
    p1 = Comparison(ColumnRef("date", "year"), CompareOp.EQ, 1994)
    p2 = Comparison(ColumnRef("date", "weeknuminyear"), CompareOp.EQ, 6)
    joint = stats.estimate_conjunction([p1, p2])
    assert joint == pytest.approx(
        stats.estimate_predicate(p1) * stats.estimate_predicate(p2))


def test_planner_orders_by_estimates(system_x):
    """Q4.3 restricts supplier to one nation (1/25) and part to one
    category (1/25) vs customer to a region (1/5): the most selective
    dimensions must be probed first."""
    from repro.rowstore.operators import SpillAccountant
    from repro.rowstore.planner import RowPlanner

    planner = RowPlanner(system_x.pool, system_x.artifacts, system_x.data,
                         SpillAccountant(system_x.disk, 1 << 30),
                         statistics=system_x.statistics)
    order = [dim for dim, _t, _s in
             planner._dim_hash_tables(query_by_name("Q4.3"))]
    assert order.index("supplier") < order.index("customer")
    assert order.index("part") < order.index("customer")


@given(st.lists(st.integers(min_value=-10_000, max_value=10_000),
                min_size=1, max_size=500),
       st.integers(min_value=-10_000, max_value=10_000),
       st.integers(min_value=0, max_value=5_000))
@settings(max_examples=60, deadline=None)
def test_property_range_estimate_bounded(values, lo, span):
    """Equi-depth estimates are within one bucket of the truth."""
    arr = np.asarray(values, dtype=np.int64)
    h = Histogram.build(arr, buckets=16)
    hi = lo + span
    actual = float(((arr >= lo) & (arr <= hi)).sum()) / len(arr)
    estimate = h.estimate_range(lo, hi)
    max_bucket = float(h.counts.max()) / h.num_rows if h.num_rows else 0
    assert abs(estimate - actual) <= 2 * max_bucket + 1e-9


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_full_range_is_one(values):
    arr = np.asarray(values, dtype=np.int64)
    h = Histogram.build(arr)
    assert h.estimate_range(int(arr.min()), int(arr.max())) == \
        pytest.approx(1.0, abs=0.02)
