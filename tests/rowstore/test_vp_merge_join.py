"""The merge-join variant of vertical partitioning's position joins
(the 'merge join without a sort' of Section 6.2.2)."""

import pytest

from repro.errors import PlanError
from repro.reference import execute as ref_execute
from repro.rowstore.designs import DesignKind
from repro.ssb import all_queries, query_by_name


def test_merge_join_results_match_oracle(ssb_data, system_x):
    for q in all_queries():
        run = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING,
                               vp_join="merge")
        assert run.result.same_rows(ref_execute(ssb_data.tables, q)), q.name


def test_merge_join_avoids_hash_work(system_x):
    q = query_by_name("Q2.1")
    hash_run = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING,
                                vp_join="hash")
    merge_run = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING,
                                 vp_join="merge")
    # the position joins stop building/probing hash tables...
    assert merge_run.stats.hash_inserts < hash_run.stats.hash_inserts / 2
    assert merge_run.stats.hash_probes < hash_run.stats.hash_probes
    # ...and stop spilling
    assert merge_run.stats.bytes_written == 0
    assert merge_run.seconds < hash_run.seconds


def test_merge_join_still_loses_to_traditional(system_x):
    """Even with the merge join the paper wished for, VP's 16-byte
    per-value footprint keeps it behind the traditional design."""
    totals = {"merge": 0.0, "t": 0.0}
    for name in ("Q2.1", "Q4.1"):
        q = query_by_name(name)
        totals["merge"] += system_x.execute(
            q, DesignKind.VERTICAL_PARTITIONING, vp_join="merge").seconds
        totals["t"] += system_x.execute(q, DesignKind.TRADITIONAL).seconds
    assert totals["merge"] > totals["t"]


def test_bad_vp_join_rejected(system_x):
    with pytest.raises(PlanError):
        system_x.execute(query_by_name("Q2.1"),
                         DesignKind.VERTICAL_PARTITIONING,
                         vp_join="sideways")
