"""Bitmap index, row operators, and predicate compilation tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExecutionError, TypeMismatchError
from repro.plan.logical import (
    ColumnRef,
    CompareOp,
    Comparison,
    InSet,
    RangePredicate,
)
from repro.rowstore.bitmap_index import BitmapIndex, intersect_rid_sets
from repro.rowstore.operators import (
    HashAggregator,
    HashTable,
    RowBatch,
    SpillAccountant,
    hash_join,
    heap_fetch,
    qualified,
    seq_scan,
)
from repro.rowstore.predicates import compile_predicate, encode_literal
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats
from repro.storage.column import Column
from repro.storage.heapfile import HeapFile
from repro.storage.table import Table
from repro.types import int32


# --------------------------------------------------------------------- #
# bitmap index
# --------------------------------------------------------------------- #
def _bitmap(values):
    disk = SimulatedDisk(QueryStats())
    idx = BitmapIndex.build(disk, "bmp", np.asarray(values, dtype=np.int32))
    return idx, BufferPool(disk, 1024 * 1024)


def test_bitmap_single_value():
    values = [3, 1, 3, 2, 3]
    idx, pool = _bitmap(values)
    assert idx.read_rids(pool, 3).tolist() == [0, 2, 4]
    assert idx.read_rids(pool, 1).tolist() == [1]
    assert idx.read_rids(pool, 99).tolist() == []
    assert idx.num_values == 3


def test_bitmap_union_and_range():
    values = [0, 1, 2, 3, 4] * 100
    idx, pool = _bitmap(values)
    union = idx.read_union(pool, [1, 3])
    assert len(union) == 200
    assert np.all(np.diff(union) > 0)
    rng = idx.read_range(pool, 2, 3)
    assert len(rng) == 200


def test_bitmap_intersection():
    a = np.array([1, 3, 5, 7], dtype=np.int64)
    b = np.array([3, 4, 7], dtype=np.int64)
    _, pool = _bitmap([0])
    out = intersect_rid_sets(pool, [a, b])
    assert out.tolist() == [3, 7]
    assert pool.stats.position_ops > 0


def test_bitmap_rids_roundtrip_random():
    rng = np.random.default_rng(4)
    values = rng.integers(0, 37, 10_000).astype(np.int32)
    idx, pool = _bitmap(values)
    for v in (0, 17, 36):
        expected = np.flatnonzero(values == v).tolist()
        assert idx.read_rids(pool, v).tolist() == expected


# --------------------------------------------------------------------- #
# predicate compilation
# --------------------------------------------------------------------- #
REF = ColumnRef("t", "c")


def test_encode_literal():
    assert encode_literal(5, np.dtype("<i4")) == 5
    assert encode_literal("ab", np.dtype("S4")) == b"ab"
    with pytest.raises(TypeMismatchError):
        encode_literal("ab", np.dtype("<i4"))
    with pytest.raises(TypeMismatchError):
        encode_literal(1, np.dtype("S4"))
    with pytest.raises(TypeMismatchError):
        encode_literal("toolong", np.dtype("S2"))


@pytest.mark.parametrize("op,expected", [
    (CompareOp.EQ, [False, True, False]),
    (CompareOp.LT, [True, False, False]),
    (CompareOp.LE, [True, True, False]),
    (CompareOp.GT, [False, False, True]),
    (CompareOp.GE, [False, True, True]),
])
def test_comparison_ops(op, expected):
    stats = QueryStats()
    pred = compile_predicate(Comparison(REF, op, 5), np.dtype("<i4"))
    mask = pred(np.array([1, 5, 9], dtype=np.int32), stats)
    assert mask.tolist() == expected
    assert stats.attr_extractions == 3


def test_range_and_inset():
    stats = QueryStats()
    rng = compile_predicate(RangePredicate(REF, 2, 4), np.dtype("<i4"))
    assert rng(np.array([1, 2, 3, 4, 5]), stats).tolist() == \
        [False, True, True, True, False]
    ins = compile_predicate(InSet(REF, (1, 5)), np.dtype("<i4"))
    assert ins(np.array([1, 2, 5]), stats).tolist() == [True, False, True]


def test_string_predicates_on_bytes():
    stats = QueryStats()
    pred = compile_predicate(Comparison(REF, CompareOp.EQ, "ASIA"),
                             np.dtype("S12"))
    data = np.array([b"ASIA", b"EUROPE"], dtype="S12")
    assert pred(data, stats).tolist() == [True, False]
    # width scales the scalar cost
    assert stats.values_scanned_scalar == 2 * 3  # 12 bytes = 3 words


# --------------------------------------------------------------------- #
# operators
# --------------------------------------------------------------------- #
def _heap(n=2000):
    disk = SimulatedDisk(QueryStats())
    rng = np.random.default_rng(7)
    table = Table("t", [
        Column.from_ints("k", np.arange(n, dtype=np.int32), int32()),
        Column.from_ints("v", rng.integers(0, 10, n).astype(np.int32),
                         int32()),
    ])
    heap = HeapFile.load(disk, "h", table)
    return heap, BufferPool(disk, 1024 * 1024 * 4), table


def test_seq_scan_no_predicate():
    heap, pool, table = _heap()
    batches = list(seq_scan(heap, pool, "t", ["k", "v"]))
    total = sum(len(b) for b in batches)
    assert total == 2000
    assert pool.stats.iterator_calls == 2000
    assert pool.stats.tuple_bytes_scanned == 2000 * heap.fmt.record_width


def test_seq_scan_with_predicate():
    heap, pool, table = _heap()
    pred = Comparison(ColumnRef("t", "v"), CompareOp.LT, 3)
    rows = sum(len(b) for b in seq_scan(heap, pool, "t", ["k"], [pred]))
    expected = int((table.column("v").data < 3).sum())
    assert rows == expected


def test_seq_scan_short_circuits_second_predicate():
    heap, pool, _ = _heap()
    preds = [Comparison(ColumnRef("t", "v"), CompareOp.LT, 3),
             Comparison(ColumnRef("t", "k"), CompareOp.LT, 100)]
    list(seq_scan(heap, pool, "t", ["k"], preds))
    # the second predicate ran only on survivors of the first
    assert pool.stats.values_scanned_scalar < 2 * 2000


def test_seq_scan_rids():
    heap, pool, _ = _heap()
    batches = list(seq_scan(heap, pool, "t", ["k"], rid_column="_rid"))
    rids = np.concatenate([b.column("_rid") for b in batches])
    keys = np.concatenate([b.column(qualified("t", "k")) for b in batches])
    assert np.array_equal(rids, keys.astype(np.int64))


def test_heap_fetch_by_rid():
    heap, pool, table = _heap()
    rids = np.array([5, 100, 1999], dtype=np.int64)
    batches = list(heap_fetch(heap, pool, rids, "t", ["k"]))
    keys = np.concatenate([b.column(qualified("t", "k")) for b in batches])
    assert sorted(keys.tolist()) == [5, 100, 1999]


def test_hash_table_and_join():
    stats = QueryStats()
    build = HashTable(np.array([1, 2, 3], dtype=np.int64),
                      {"name": np.array([10, 20, 30], dtype=np.int64)},
                      stats)
    assert stats.hash_inserts == 3
    found, rows = build.probe(np.array([2, 9], dtype=np.int64), stats)
    assert found.tolist() == [True, False]
    assert build.payload_at("name", rows[found]).tolist() == [20]

    stream = [RowBatch({"fk": np.array([1, 9, 3], dtype=np.int64)})]
    out = list(hash_join(stream, "fk", build, {"name": "d.name"}, stats))
    assert out[0].column("fk").tolist() == [1, 3]
    assert out[0].column("d.name").tolist() == [10, 30]


def test_hash_join_spill_charges_io():
    disk = SimulatedDisk(QueryStats())
    stats = disk.stats
    spill = SpillAccountant(disk, memory_budget_bytes=10)
    build = HashTable(np.arange(100, dtype=np.int64),
                      {"p": np.arange(100, dtype=np.int64)}, stats)
    stream = [RowBatch({"fk": np.arange(100, dtype=np.int64)})]
    list(hash_join(stream, "fk", build, {"p": "p"}, stats, spill=spill,
                   probe_row_bytes=8, probe_rows_estimate=100))
    assert stats.bytes_written > 0
    assert stats.bytes_read > 0


def test_hash_aggregator_groups():
    stats = QueryStats()
    agg = HashAggregator(["g"], ["s"])
    agg.consume([np.array([1, 1, 2])], [np.array([10, 20, 5])], stats)
    agg.consume([np.array([2])], [np.array([7])], stats)
    result = agg.result()
    rows = dict((r[0], r[1]) for r in result.rows)
    assert rows == {1: 30, 2: 12}
    assert stats.agg_updates == 4


def test_hash_aggregator_no_groups():
    stats = QueryStats()
    agg = HashAggregator([], ["s"])
    agg.consume([], [np.array([1, 2, 3])], stats)
    assert agg.result().rows == [(6,)]


def test_hash_aggregator_bytes_groups():
    stats = QueryStats()
    agg = HashAggregator(["g"], ["s"])
    agg.consume([np.array([b"x", b"y", b"x"], dtype="S2")],
                [np.array([1, 2, 4])], stats)
    rows = dict(agg.result().rows)
    assert rows == {"x": 5, "y": 2}


def test_row_batch_validation():
    with pytest.raises(ExecutionError):
        RowBatch({"a": np.array([1]), "b": np.array([1, 2])})
    batch = RowBatch({"a": np.array([1, 2])})
    with pytest.raises(ExecutionError):
        batch.column("missing")


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                max_size=500))
@settings(max_examples=40, deadline=None)
def test_property_bitmap_partition(values):
    """Every rid appears in exactly one value's rid set."""
    idx, pool = _bitmap(values)
    seen = []
    for v in set(values):
        seen.extend(idx.read_rids(pool, v).tolist())
    assert sorted(seen) == list(range(len(values)))
