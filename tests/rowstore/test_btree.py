"""B+Tree unit and property tests: bulk load, scans, duplicates,
composite keys, structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.rowstore.btree import BPlusTree
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats


def _build(keys, secondary=None, fill=0.67):
    disk = SimulatedDisk(QueryStats())
    keys = np.asarray(keys, dtype=np.int64)
    rids = np.arange(len(keys), dtype=np.int32)
    tree = BPlusTree.build(disk, "idx", keys, rids, secondary=secondary,
                           fill_factor=fill)
    return tree, BufferPool(disk, 1024 * 1024 * 16)


def _range_rids(tree, pool, lo, hi):
    out = []
    for leaf in tree.range_scan(pool, lo, hi):
        out.extend(leaf.rids.tolist())
    return sorted(out)


def test_empty_tree():
    tree, pool = _build([])
    assert tree.num_entries == 0
    assert list(tree.range_scan(pool, 0, 10)) == []
    assert tree.lookup(pool, 5).tolist() == []
    assert tree.verify(pool)


def test_single_leaf():
    tree, pool = _build([5, 3, 9])
    assert tree.height == 1
    assert tree.lookup(pool, 3).tolist() == [1]
    assert _range_rids(tree, pool, 3, 5) == [0, 1]


def test_multi_level_full_scan():
    n = 100_000
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 10_000, n)
    tree, pool = _build(keys)
    assert tree.height >= 2
    scanned = np.concatenate([leaf.keys for leaf in tree.scan_leaves(pool)])
    assert len(scanned) == n
    assert np.all(np.diff(scanned) >= 0)
    assert tree.verify(pool)


def test_range_scan_matches_numpy():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 500, 20_000)
    tree, pool = _build(keys)
    for lo, hi in ((0, 0), (10, 20), (499, 499), (450, 600), (-5, 3)):
        expected = sorted(np.flatnonzero((keys >= lo) & (keys <= hi))
                          .tolist())
        assert _range_rids(tree, pool, lo, hi) == expected


def test_duplicate_run_spanning_leaves():
    # one value repeated enough to span several leaves
    keys = np.concatenate([np.zeros(10, np.int64),
                           np.full(20_000, 7, np.int64),
                           np.full(10, 9, np.int64)])
    tree, pool = _build(keys)
    assert tree.num_leaves > 3
    assert len(tree.lookup(pool, 7)) == 20_000
    assert len(tree.lookup(pool, 0)) == 10
    assert len(tree.lookup(pool, 9)) == 10
    assert len(tree.lookup(pool, 8)) == 0


def test_composite_secondary_key():
    keys = np.array([3, 1, 2, 1], dtype=np.int64)
    secondary = np.array([30, 11, 20, 10], dtype=np.int64)
    tree, pool = _build(keys, secondary=secondary)
    leaves = list(tree.range_scan(pool, 1, 1))
    got_secondary = np.concatenate([b.secondary for b in leaves])
    assert got_secondary.tolist() == [10, 11]  # secondary-sorted


def test_bad_fill_factor():
    disk = SimulatedDisk(QueryStats())
    with pytest.raises(StorageError):
        BPlusTree.build(disk, "x", np.array([1]), np.array([0]),
                        fill_factor=0.01)


def test_mismatched_lengths():
    disk = SimulatedDisk(QueryStats())
    with pytest.raises(StorageError):
        BPlusTree.build(disk, "x", np.array([1, 2]), np.array([0]))


def test_fill_factor_inflates_size():
    keys = np.arange(50_000, dtype=np.int64)
    t_full, _ = _build(keys, fill=1.0)
    t_loose, _ = _build(keys, fill=0.5)
    assert t_loose.num_pages > t_full.num_pages


def test_index_scan_charges_io():
    keys = np.arange(50_000, dtype=np.int64)
    tree, pool = _build(keys)
    pool.stats.reset()
    list(tree.scan_leaves(pool))
    assert pool.stats.pages_read == tree.num_leaves


@given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=400),
       st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=0, max_value=500))
@settings(max_examples=50, deadline=None)
def test_property_range_scan(keys_list, lo, span):
    hi = lo + span
    keys = np.asarray(keys_list, dtype=np.int64)
    tree, pool = _build(keys)
    expected = sorted(np.flatnonzero((keys >= lo) & (keys <= hi)).tolist())
    assert _range_rids(tree, pool, lo, hi) == expected
    assert tree.verify(pool)
