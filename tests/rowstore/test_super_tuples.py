"""Super-tuple vertical partitioning (Halverson et al.; the paper's
conclusion list of row-store improvements)."""

import pytest

from repro.core.config import ExecutionConfig
from repro.reference import execute as ref_execute
from repro.rowstore.designs import DesignKind
from repro.ssb import all_queries, query_by_name


def test_super_tuple_results_match_oracle(ssb_data, system_x):
    for q in all_queries():
        run = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING,
                               vp_super_tuples=True, vp_join="merge")
        assert run.result.same_rows(ref_execute(ssb_data.tables, q)), q.name


def test_super_tuple_storage_is_lean(system_x):
    # force the lazy build
    system_x.execute(query_by_name("Q1.1"),
                     DesignKind.VERTICAL_PARTITIONING,
                     vp_super_tuples=True)
    heaps = system_x.artifacts.vp_super_heaps
    assert len(heaps) == 17
    quantity = heaps["quantity"]
    # 4 bytes per value: no header, no explicit position
    assert quantity.fmt.record_width == 4
    plain_vp = system_x.artifacts.vp_heaps["quantity"]
    assert quantity.size_bytes < plain_vp.size_bytes / 3


def test_super_tuples_remove_row_overheads(system_x):
    q = query_by_name("Q2.1")
    plain = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING)
    sup = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING,
                           vp_super_tuples=True, vp_join="merge")
    # 4x fewer bytes per value...
    assert sup.stats.bytes_read < 0.5 * plain.stats.bytes_read
    # ...and block-at-a-time fact scans: the per-tuple costs that remain
    # come from dimension heaps and probe-side joins, not fact columns
    assert sup.stats.block_calls > 0
    assert sup.stats.iterator_calls < 0.5 * plain.stats.iterator_calls
    assert sup.stats.tuple_bytes_scanned < \
        0.2 * plain.stats.tuple_bytes_scanned
    assert sup.seconds < plain.seconds


def test_super_tuples_close_on_naive_column_store(system_x, cstore):
    """Halverson et al.'s claim reproduces: super tuples make vertical
    partitioning competitive with a *naive* column store (here: C-Store
    with compression, LM, invisible join, and block iteration removed is
    the closest analogue) — while full C-Store stays far ahead, the
    paper's rebuttal."""
    q = query_by_name("Q2.1")
    sup = system_x.execute(q, DesignKind.VERTICAL_PARTITIONING,
                           vp_super_tuples=True, vp_join="merge").seconds
    naive_cs = cstore.execute(q, ExecutionConfig.from_label("ticL")).seconds
    full_cs = cstore.execute(q).seconds
    assert sup < 3 * naive_cs        # competitive with naive columns
    assert sup > 2 * full_cs         # not with the real thing
