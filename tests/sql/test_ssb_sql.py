"""The paper's SQL text must bind to exactly the hand-built IR."""

import pytest

from repro.reference import execute as ref_execute
from repro.sql import parse_query
from repro.ssb import query_by_name
from repro.ssb.sql_text import SQL_TEXT


@pytest.mark.parametrize("name", sorted(SQL_TEXT), ids=lambda n: n)
def test_sql_equals_hand_built(name, ssb_data):
    hand = query_by_name(name)
    parsed = parse_query(SQL_TEXT[name], name=name)
    assert parsed.fact_table == hand.fact_table
    assert parsed.joins == hand.joins
    assert set(parsed.predicates) == set(hand.predicates)
    assert parsed.group_by == hand.group_by
    assert parsed.aggregates == hand.aggregates
    assert parsed.order_by == hand.order_by
    for dim in hand.joins.values():
        assert parsed.key_of(dim) == hand.key_of(dim)
    # and both produce identical results through the oracle
    assert ref_execute(ssb_data.tables, parsed).same_rows(
        ref_execute(ssb_data.tables, hand))


def test_all_thirteen_present():
    assert len(SQL_TEXT) == 13
