"""IR -> SQL -> IR round-trips."""

import dataclasses

import pytest

from repro.plan.logical import (
    AggExpr,
    ColumnRef,
    CompareOp,
    Comparison,
    OrderKey,
    StarQuery,
)
from repro.reference import execute as ref_execute
from repro.sql import parse_query
from repro.sql.render import render
from repro.ssb import all_queries


def _equivalent(a: StarQuery, b: StarQuery) -> bool:
    return (
        a.fact_table == b.fact_table
        and a.joins == b.joins
        and set(a.predicates) == set(b.predicates)
        and a.group_by == b.group_by
        and a.aggregates == b.aggregates
        and a.order_by == b.order_by
        and a.limit == b.limit
        and {d: a.key_of(d) for d in a.joins.values()}
        == {d: b.key_of(d) for d in b.joins.values()}
    )


@pytest.mark.parametrize("query", all_queries(), ids=lambda q: q.name)
def test_ssb_queries_roundtrip(query):
    sql = render(query)
    back = parse_query(sql, name=query.name)
    assert _equivalent(query, back), sql


def test_roundtrip_executes_identically(ssb_data):
    for query in all_queries()[:4]:
        back = parse_query(render(query))
        assert ref_execute(ssb_data.tables, back).same_rows(
            ref_execute(ssb_data.tables, query))


def test_render_limit_and_quotes():
    q = StarQuery(
        name="q",
        fact_table="lineorder",
        joins={"suppkey": "supplier"},
        predicates=(Comparison(ColumnRef("supplier", "name"),
                               CompareOp.EQ, "it's"),),
        group_by=(ColumnRef("supplier", "nation"),),
        aggregates=(AggExpr("max", ColumnRef("lineorder", "revenue"),
                            "top"),),
        order_by=(OrderKey("top", ascending=False),),
        limit=5,
    )
    sql = render(q)
    assert "LIMIT 5" in sql
    assert "'it''s'" in sql
    back = parse_query(sql)
    assert _equivalent(q, back)


def test_render_fuzzed_queries(ssb_data):
    """Random fuzz-generated IR renders and re-parses equivalently."""
    from hypothesis import given, settings, HealthCheck
    from hypothesis import strategies as st

    from tests.integration.test_query_fuzzing import star_queries

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(data=st.data())
    def run(data):
        query = data.draw(star_queries(ssb_data))
        back = parse_query(render(query), name=query.name)
        assert _equivalent(query, back)

    run()
