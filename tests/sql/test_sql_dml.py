"""SQL DML front end: INSERT/DELETE parsing, binding, and the typed
error surface."""

import pytest

from repro.errors import SqlBindError, SqlParseError
from repro.plan.logical import CompareOp
from repro.sql import bind_delete, bind_insert, parse_statement
from repro.sql.ast import DeleteStatement, InsertStatement, SelectStatement


def test_parse_and_bind_insert():
    statement = parse_statement(
        "INSERT INTO supplier (suppkey, name, address, city, nation, "
        "region, phone) VALUES (99991, 'Supplier#99991', 'addr', "
        "'UNITED ST0', 'UNITED STATES', 'AMERICA', '12-345')")
    assert isinstance(statement, InsertStatement)
    table, rows = bind_insert(statement)
    assert table == "supplier"
    assert rows == [{"suppkey": 99991, "name": "Supplier#99991",
                     "address": "addr", "city": "UNITED ST0",
                     "nation": "UNITED STATES", "region": "AMERICA",
                     "phone": "12-345"}]


def test_parse_and_bind_multi_row_insert():
    table, rows = bind_insert(parse_statement(
        "INSERT INTO part (partkey, name) VALUES (1, 'a'), (2, 'b');"))
    assert table == "part"
    assert rows == [{"partkey": 1, "name": "a"},
                    {"partkey": 2, "name": "b"}]


def test_parse_and_bind_delete():
    statement = parse_statement(
        "DELETE FROM lineorder WHERE quantity < 5 AND discount = 0")
    assert isinstance(statement, DeleteStatement)
    table, predicates = bind_delete(statement)
    assert table == "lineorder"
    assert len(predicates) == 2
    assert predicates[0].table == "lineorder"
    assert predicates[0].column == "quantity"
    assert predicates[0].op is CompareOp.LT and predicates[0].value == 5


def test_bare_delete_binds_empty_conjunction():
    table, predicates = bind_delete(parse_statement(
        "DELETE FROM lineorder"))
    assert table == "lineorder" and predicates == []


def test_select_still_dispatches():
    statement = parse_statement(
        "SELECT sum(lo.revenue) AS r FROM lineorder AS lo")
    assert isinstance(statement, SelectStatement)


def test_insert_bind_errors():
    with pytest.raises(SqlBindError, match="nosuch"):
        bind_insert(parse_statement(
            "INSERT INTO nosuch (a) VALUES (1)"))
    with pytest.raises(SqlBindError, match="nosuch"):
        bind_insert(parse_statement(
            "INSERT INTO part (nosuch) VALUES (1)"))
    with pytest.raises(SqlBindError):  # string literal into int column
        bind_insert(parse_statement(
            "INSERT INTO part (partkey) VALUES ('x')"))
    with pytest.raises(SqlBindError):  # int literal into string column
        bind_insert(parse_statement(
            "INSERT INTO part (name) VALUES (3)"))
    with pytest.raises(SqlBindError, match="partkey"):
        bind_insert(parse_statement(
            "INSERT INTO part (partkey, partkey) VALUES (1, 1)"))


def test_insert_arity_mismatch_is_a_parse_error():
    with pytest.raises(SqlParseError,
                       match=r"1 value\(s\) for 2 column\(s\)"):
        parse_statement("INSERT INTO part (partkey, name) VALUES (1)")


def test_delete_rejects_disjunction():
    with pytest.raises(SqlParseError, match="conjunctive"):
        parse_statement(
            "DELETE FROM lineorder WHERE quantity < 5 OR discount = 0")


def test_delete_rejects_column_to_column_comparison():
    with pytest.raises(SqlBindError):
        bind_delete(parse_statement(
            "DELETE FROM lineorder WHERE quantity = orderkey"))
