"""SQL lexer, parser, and binder tests."""

import pytest

from repro.errors import SqlBindError, SqlLexError, SqlParseError
from repro.plan.logical import CompareOp, Comparison, InSet, RangePredicate
from repro.sql import parse, parse_query
from repro.sql.ast import Arith, BetweenCond, Ident, NumberLit, StringLit
from repro.sql.lexer import TokenKind, tokenize


# --------------------------------------------------------------------- #
# lexer
# --------------------------------------------------------------------- #
def test_tokenize_basics():
    tokens = tokenize("SELECT a.b, 'x''y' FROM t WHERE c <= 10")
    kinds = [t.kind for t in tokens]
    assert kinds[-1] is TokenKind.EOF
    texts = [t.text for t in tokens[:-1]]
    assert texts == ["SELECT", "a", ".", "b", ",", "x'y", "FROM", "t",
                     "WHERE", "c", "<=", "10"]


def test_tokenize_keywords_case_insensitive():
    tokens = tokenize("select From AS")
    assert [t.text for t in tokens[:-1]] == ["SELECT", "FROM", "AS"]


def test_tokenize_comments():
    tokens = tokenize("SELECT -- a comment\n x")
    assert [t.text for t in tokens[:-1]] == ["SELECT", "x"]


def test_tokenize_unterminated_string():
    with pytest.raises(SqlLexError):
        tokenize("SELECT 'oops")


def test_tokenize_bad_character():
    with pytest.raises(SqlLexError):
        tokenize("SELECT @")


# --------------------------------------------------------------------- #
# parser
# --------------------------------------------------------------------- #
def test_parse_simple_aggregate():
    stmt = parse("SELECT sum(lo.a * lo.b) AS x FROM lineorder AS lo")
    item = stmt.items[0]
    assert item.aggregate == "sum"
    assert item.alias == "x"
    assert isinstance(item.expr, Arith)
    assert stmt.tables[0].alias == "lo"


def test_parse_between_and_in():
    stmt = parse("SELECT sum(a) FROM t WHERE a BETWEEN 1 AND 3 "
                 "AND b IN ('x', 'y')")
    between, inset = stmt.conditions
    assert isinstance(between, BetweenCond)
    assert between.low == NumberLit(1)
    assert inset.values == (StringLit("x"), StringLit("y"))


def test_parse_group_order():
    stmt = parse("SELECT sum(v) AS s, g FROM t GROUP BY g "
                 "ORDER BY g ASC, s DESC")
    assert stmt.group_by == (Ident(None, "g"),)
    assert stmt.order_by[0].ascending is True
    assert stmt.order_by[1].ascending is False


def test_parse_implicit_alias():
    stmt = parse("SELECT sum(x) FROM lineorder lo")
    assert stmt.tables[0].alias == "lo"


def test_parse_rejects_or():
    with pytest.raises(SqlParseError):
        parse("SELECT sum(x) FROM t WHERE a = 1 OR b = 2")


def test_parse_rejects_trailing_garbage():
    with pytest.raises(SqlParseError):
        parse("SELECT sum(x) FROM t GROUP")


def test_parse_accepts_positive_limit():
    assert parse("SELECT sum(x) FROM t LIMIT 5").limit == 5


def test_parse_rejects_limit_zero():
    with pytest.raises(SqlParseError, match="LIMIT"):
        parse("SELECT sum(x) FROM t LIMIT 0")


def test_parse_rejects_negative_limit():
    # negative numbers lex as '-' + NUMBER; the parser must fold and
    # reject them with the clause named, not choke on the symbol
    with pytest.raises(SqlParseError, match="LIMIT.*-3"):
        parse("SELECT sum(x) FROM t LIMIT -3")


def test_parse_rejects_non_numeric_limit():
    with pytest.raises(SqlParseError, match="LIMIT"):
        parse("SELECT sum(x) FROM t LIMIT lots")


def test_parse_rejects_missing_from():
    with pytest.raises(SqlParseError):
        parse("SELECT sum(x)")


def test_parse_parenthesized_expr():
    stmt = parse("SELECT sum((a + b) * c) FROM t")
    expr = stmt.items[0].expr
    assert isinstance(expr, Arith) and expr.op == "*"


# --------------------------------------------------------------------- #
# binder
# --------------------------------------------------------------------- #
def test_bind_minimal():
    q = parse_query("SELECT sum(lo.revenue) AS r FROM lineorder AS lo")
    assert q.fact_table == "lineorder"
    assert q.aggregates[0].alias == "r"
    assert q.joins == {}


def test_bind_join_classification():
    q = parse_query(
        "SELECT sum(lo.revenue) AS r FROM lineorder AS lo, date AS d "
        "WHERE lo.orderdate = d.datekey AND d.year = 1993")
    assert q.joins == {"orderdate": "date"}
    assert q.key_of("date") == "datekey"
    assert q.predicates == (
        Comparison(q.predicates[0].ref, CompareOp.EQ, 1993),)


def test_bind_flipped_literal():
    q = parse_query(
        "SELECT sum(lo.revenue) AS r FROM lineorder AS lo "
        "WHERE 25 > lo.quantity")
    pred = q.predicates[0]
    assert pred.op is CompareOp.LT
    assert pred.value == 25


def test_bind_unqualified_unique_column():
    q = parse_query("SELECT sum(revenue) AS r FROM lineorder")
    assert q.aggregates[0].expr.column == "revenue"


def test_bind_ambiguous_column_rejected():
    with pytest.raises(SqlBindError):
        parse_query(
            "SELECT sum(lo.revenue) AS r FROM lineorder AS lo, "
            "customer AS c WHERE custkey = 5")


def test_bind_unknown_table_rejected():
    with pytest.raises(SqlBindError):
        parse_query("SELECT sum(x) FROM nonexistent")


def test_bind_unknown_column_rejected():
    with pytest.raises(SqlBindError):
        parse_query("SELECT sum(nope) AS r FROM lineorder")


def test_bind_select_column_must_be_grouped():
    with pytest.raises(SqlBindError):
        parse_query(
            "SELECT lo.quantity, sum(lo.revenue) AS r FROM lineorder AS lo")


def test_bind_requires_aggregate():
    with pytest.raises(SqlBindError):
        parse_query("SELECT quantity FROM lineorder GROUP BY quantity")


def test_bind_order_key_must_exist():
    with pytest.raises(SqlBindError):
        parse_query(
            "SELECT sum(lo.revenue) AS r FROM lineorder AS lo "
            "ORDER BY nonsense")


def test_bind_non_equijoin_rejected():
    with pytest.raises(SqlBindError):
        parse_query(
            "SELECT sum(lo.revenue) AS r FROM lineorder AS lo, date AS d "
            "WHERE lo.orderdate < d.datekey")


def test_bind_aggregate_over_dimension_rejected():
    with pytest.raises(SqlBindError):
        parse_query(
            "SELECT sum(d.year) AS r FROM lineorder AS lo, date AS d "
            "WHERE lo.orderdate = d.datekey")


def test_count_star():
    q = parse_query("SELECT count(*) AS n FROM lineorder")
    assert q.aggregates[0].func == "count"


def test_count_star_grouped(ssb_data=None):
    q = parse_query(
        "SELECT lo.shipmode, count(*) AS n FROM lineorder AS lo "
        "GROUP BY lo.shipmode ORDER BY n DESC LIMIT 3")
    assert q.limit == 3
    assert q.group_by[0].column == "shipmode"


def test_star_only_valid_in_count():
    with pytest.raises(SqlParseError):
        parse_query("SELECT sum(*) AS s FROM lineorder")
