"""Failure injection: corrupt page images must raise typed errors, not
return wrong data silently."""

import numpy as np
import pytest

from repro.errors import EncodingError, PageFormatError, StorageError
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats
from repro.storage.colfile import ColumnFile, CompressionLevel
from repro.storage.column import Column
from repro.storage.encodings import decode_payload
from repro.storage.heapfile import HeapFile
from repro.storage.table import Table
from repro.types import int32


def _env():
    disk = SimulatedDisk(QueryStats())
    return disk, BufferPool(disk, 1024 * 1024)


def _corrupt(disk, name, page_no, payload):
    disk.file(name).pages[page_no] = payload


def test_colfile_truncated_page(disk, pool):
    col = Column.from_ints("v", np.arange(10_000, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.NONE)
    original = disk.file("c").pages[0]
    _corrupt(disk, "c", 0, original[:100])
    pool.clear()
    with pytest.raises((StorageError, EncodingError)):
        f.read_all(pool)


def test_colfile_unknown_codec_byte(disk, pool):
    col = Column.from_ints("v", np.arange(100, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.NONE)
    page = bytearray(disk.file("c").pages[0])
    page[8] = 0x7F  # codec id byte
    _corrupt(disk, "c", 0, bytes(page))
    pool.clear()
    with pytest.raises(EncodingError):
        f.read_all(pool)


def test_colfile_count_mismatch(disk, pool):
    col = Column.from_ints("v", np.arange(100, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.NONE)
    page = bytearray(disk.file("c").pages[0])
    page[0] = 99  # declared count
    _corrupt(disk, "c", 0, bytes(page))
    pool.clear()
    with pytest.raises(StorageError):
        f.read_all(pool)


def test_rle_corrupt_run_lengths():
    from repro.storage.encodings.rle import RLE

    framed = bytearray(RLE.frame(np.repeat(np.int32(3), 10).astype(
        np.int32)))
    framed[-1] ^= 0xFF  # flip bits inside the run-length array
    with pytest.raises(EncodingError):
        decode_payload(bytes(framed))


def test_heapfile_bad_page_multiple(disk, pool):
    table = Table("t", [Column.from_ints("a", np.arange(100, dtype=np.int32),
                                         int32())])
    heap = HeapFile.load(disk, "h", table)
    _corrupt(disk, "h", 0, b"x" * 13)
    pool.clear()
    with pytest.raises(PageFormatError):
        list(heap.scan_batches(pool))
