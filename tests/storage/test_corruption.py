"""Failure injection: corrupt page images must raise typed errors, not
return wrong data silently.

Since the integrity layer, any in-place mutation of a stored page is
caught by the buffer pool's CRC verification *before* the payload
reaches a decoder, so pool-path reads surface :class:`ChecksumError`.
The decoder-level defenses (codec ids, counts, run lengths) remain the
second line and are exercised directly on payload bytes.
"""

import struct

import numpy as np
import pytest

from repro.errors import (
    ChecksumError,
    EncodingError,
    PageFormatError,
    StorageError,
)
from repro.simio.buffer_pool import BufferPool
from repro.simio.disk import SimulatedDisk
from repro.simio.stats import QueryStats
from repro.storage.colfile import ColumnFile, CompressionLevel
from repro.storage.column import Column
from repro.storage.encodings import decode_payload
from repro.storage.encodings.codec import pack_dtype
from repro.storage.heapfile import HeapFile
from repro.storage.table import Table
from repro.types import int32


def _env():
    disk = SimulatedDisk(QueryStats())
    return disk, BufferPool(disk, 1024 * 1024)


def _corrupt(disk, name, page_no, payload):
    disk.file(name).pages[page_no] = payload


# --------------------------------------------------------------------- #
# pool path: the checksum layer catches every stored-image mutation
# --------------------------------------------------------------------- #
def test_colfile_truncated_page(disk, pool):
    col = Column.from_ints("v", np.arange(10_000, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.NONE)
    original = disk.file("c").pages[0]
    _corrupt(disk, "c", 0, original[:100])
    pool.clear()
    with pytest.raises(ChecksumError) as info:
        f.read_all(pool)
    assert info.value.file == "c"
    assert info.value.page_no == 0


def test_colfile_unknown_codec_byte(disk, pool):
    col = Column.from_ints("v", np.arange(100, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.NONE)
    page = bytearray(disk.file("c").pages[0])
    page[8] = 0x7F  # codec id byte
    _corrupt(disk, "c", 0, bytes(page))
    pool.clear()
    with pytest.raises(ChecksumError):
        f.read_all(pool)


def test_colfile_count_mismatch(disk, pool):
    col = Column.from_ints("v", np.arange(100, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.NONE)
    page = bytearray(disk.file("c").pages[0])
    page[0] = 99  # declared count
    _corrupt(disk, "c", 0, bytes(page))
    pool.clear()
    with pytest.raises(StorageError):
        f.read_all(pool)


def test_corrupt_page_is_quarantined_and_fails_fast(disk, pool):
    col = Column.from_ints("v", np.arange(100, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "c", col, CompressionLevel.NONE)
    _corrupt(disk, "c", 0, b"\x00" * 64)
    pool.clear()
    with pytest.raises(ChecksumError):
        f.read_all(pool)
    assert disk.is_quarantined("c", 0)
    assert disk.stats.checksum_failures > 0
    assert disk.stats.pages_quarantined == 1
    # second attempt fails fast without re-reading garbage
    before = disk.stats.pages_read
    with pytest.raises(ChecksumError, match="quarantined"):
        f.read_all(pool)
    assert disk.stats.pages_read == before


def test_heapfile_bad_page_multiple(disk, pool):
    table = Table("t", [Column.from_ints("a", np.arange(100, dtype=np.int32),
                                         int32())])
    heap = HeapFile.load(disk, "h", table)
    _corrupt(disk, "h", 0, b"x" * 13)
    pool.clear()
    with pytest.raises(ChecksumError):
        list(heap.scan_batches(pool))


def test_heapfile_bad_page_decoder_layer(disk, pool):
    """If garbage somehow carries a valid CRC (rewrite_page refreshes
    it), the slotted-page decoder still rejects the page."""
    table = Table("t", [Column.from_ints("a", np.arange(100, dtype=np.int32),
                                         int32())])
    heap = HeapFile.load(disk, "h", table)
    disk.rewrite_page("h", 0, b"x" * 13)
    pool.clear()
    with pytest.raises(PageFormatError):
        list(heap.scan_batches(pool))


# --------------------------------------------------------------------- #
# decoder layer: corrupt payload branches exercised directly
# --------------------------------------------------------------------- #
def test_rle_corrupt_run_lengths():
    from repro.storage.encodings.rle import RLE

    framed = bytearray(RLE.frame(np.repeat(np.int32(3), 10).astype(
        np.int32)))
    framed[-1] ^= 0xFF  # flip bits inside the run-length array
    with pytest.raises(EncodingError):
        decode_payload(bytes(framed))


def test_rle_run_lengths_do_not_sum():
    from repro.storage.encodings.codec import CodecId
    from repro.storage.encodings.rle import RLE

    values = np.repeat(np.arange(3, dtype=np.int32), 5)
    framed = bytearray(RLE.frame(values))
    assert framed[0] == CodecId.RLE.value
    # declared count lives right after the codec id + dtype descriptor;
    # bump it so the run lengths no longer sum to it
    dtype_len = len(pack_dtype(values.dtype))
    count_at = 1 + dtype_len
    (count,) = struct.unpack_from("<I", framed, count_at)
    assert count == len(values)
    struct.pack_into("<I", framed, count_at, count + 1)
    with pytest.raises(EncodingError,
                       match="run lengths do not sum"):
        decode_payload(bytes(framed))


def test_dictionary_no_distinct_values():
    from repro.storage.encodings.codec import CodecId

    # hand-craft: count=3 rows but an empty distinct table
    dtype = np.dtype(np.int32)
    payload = (
        bytes([CodecId.DICTIONARY.value])
        + pack_dtype(dtype)
        + struct.pack("<IIB", 3, 0, 1)   # count=3, ndistinct=0, bits=1
        + b"\x00"                        # packed indices for 3 rows
    )
    with pytest.raises(EncodingError,
                       match="no distinct values"):
        decode_payload(payload)
