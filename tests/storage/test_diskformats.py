"""Row pages, heap files, column files, projections: real round-trips
through the simulated disk."""

import numpy as np
import pytest

from repro.errors import PageFormatError, StorageError
from repro.simio.disk import PAGE_SIZE
from repro.storage.blocks import ArrayBlock, RleBlock
from repro.storage.colfile import ColumnFile, CompressionLevel
from repro.storage.column import Column
from repro.storage.heapfile import HeapFile
from repro.storage.projection import Projection
from repro.storage.rowpage import RowFormat, decode_field
from repro.storage.table import SortOrder, Table
from repro.types import Schema, int32, int64, string


def _small_table(n=1000, seed=0):
    rng = np.random.default_rng(seed)
    return Table("t", [
        Column.from_ints("k", np.arange(n, dtype=np.int32), int32()),
        Column.from_ints("v", rng.integers(0, 50, n).astype(np.int32),
                         int32()),
        Column.from_strings("s", [f"val{i % 7}" for i in range(n)]),
    ])


# --------------------------------------------------------------------- #
# RowFormat
# --------------------------------------------------------------------- #
def test_row_format_geometry():
    schema = Schema.of(("a", int32()), ("s", string(10)))
    fmt = RowFormat(schema)
    assert fmt.record_width == 8 + 4 + 10
    assert fmt.rows_per_page == PAGE_SIZE // 22
    assert fmt.num_pages_for(0) == 0
    assert fmt.num_pages_for(1) == 1
    assert fmt.num_pages_for(fmt.rows_per_page + 1) == 2


def test_row_format_header_optional():
    schema = Schema.of(("a", int32()),)
    assert RowFormat(schema, header_bytes=0).record_width == 4
    with pytest.raises(PageFormatError):
        RowFormat(schema, header_bytes=3)


def test_row_format_roundtrip():
    table = _small_table(100)
    fmt = RowFormat(table.schema)
    records = fmt.build_records(table)
    pages = list(fmt.pages_of(records))
    back = np.concatenate([fmt.parse_page(p) for p in pages])
    assert np.array_equal(back["k"], table.column("k").data)
    assert back["s"][3] == b"val3"


def test_parse_page_bad_length():
    fmt = RowFormat(Schema.of(("a", int32()),))
    with pytest.raises(PageFormatError):
        fmt.parse_page(b"x" * 13)


def test_decode_field():
    assert decode_field(b"abc") == "abc"
    assert decode_field(np.int32(5)) == 5


# --------------------------------------------------------------------- #
# HeapFile
# --------------------------------------------------------------------- #
def test_heapfile_roundtrip(disk, pool):
    table = _small_table(5000)
    heap = HeapFile.load(disk, "h", table)
    assert heap.num_rows == 5000
    got = np.concatenate(list(heap.scan_batches(pool)))
    assert np.array_equal(got["k"], table.column("k").data)


def test_heapfile_random_read(disk, pool):
    table = _small_table(5000)
    heap = HeapFile.load(disk, "h", table)
    rec = heap.read_row(pool, 4321)
    assert int(rec["k"]) == 4321
    with pytest.raises(StorageError):
        heap.read_row(pool, 5000)


def test_heapfile_charges_io(disk, pool):
    table = _small_table(5000)
    heap = HeapFile.load(disk, "h", table)
    disk.stats.reset()
    disk.reset_head()
    list(heap.scan_batches(pool))
    assert disk.stats.bytes_read == heap.num_pages * PAGE_SIZE
    assert disk.stats.seeks == 1


# --------------------------------------------------------------------- #
# ColumnFile
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("level", list(CompressionLevel))
def test_colfile_roundtrip_ints(disk, pool, level):
    col = Column.from_ints("v", np.arange(30_000, dtype=np.int32), int32())
    f = ColumnFile.load(disk, f"c_{level.value}", col, level)
    assert f.num_values == 30_000
    assert np.array_equal(f.read_all(pool), col.data)


@pytest.mark.parametrize("level", list(CompressionLevel))
def test_colfile_roundtrip_strings(disk, pool, level):
    col = Column.from_strings("s", [f"x{i % 5}" for i in range(10_000)])
    f = ColumnFile.load(disk, f"s_{level.value}", col, level)
    out = f.read_all(pool)
    if level is CompressionLevel.NONE:
        assert out.dtype.kind == "S"
        assert out[0] == b"x0"
    else:
        assert out.dtype == np.int32
        assert np.array_equal(out, col.data)


def test_colfile_empty(disk, pool):
    col = Column.from_ints("v", np.array([], dtype=np.int32), int32())
    f = ColumnFile.load(disk, "e", col)
    assert f.num_values == 0
    assert len(f.read_all(pool)) == 0


def test_colfile_compression_shrinks_sorted(disk):
    sorted_col = Column.from_ints(
        "v", np.repeat(np.arange(30, dtype=np.int32), 1000), int32())
    fc = ColumnFile.load(disk, "comp", sorted_col, CompressionLevel.MAX)
    fp = ColumnFile.load(disk, "plain", sorted_col, CompressionLevel.NONE)
    assert fc.size_bytes <= fp.size_bytes / 4


def test_colfile_rle_block_direct(disk, pool):
    col = Column.from_ints("v", np.repeat(np.int32(7), 50_000).astype(
        np.int32), int32())
    f = ColumnFile.load(disk, "r", col, CompressionLevel.MAX)
    blocks = list(f.iter_blocks(pool, direct=True))
    assert len(blocks) == 1
    assert isinstance(blocks[0], RleBlock)
    assert blocks[0].num_runs == 1
    assert blocks[0].count == 50_000
    # without direct access the same block arrives decoded, and the
    # expansion is charged
    pool.stats.reset()
    block = f.read_block(pool, 0, direct=False)
    assert isinstance(block, ArrayBlock)
    assert pool.stats.values_decompressed == 50_000


def test_colfile_block_positions(disk, pool):
    col = Column.from_ints("v", np.arange(100_000, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "b", col, CompressionLevel.NONE)
    assert f.num_blocks > 1
    assert f.block_for_position(0) == 0
    last = f.block_for_position(99_999)
    assert last == f.num_blocks - 1
    with pytest.raises(StorageError):
        f.block_for_position(100_000)


def test_colfile_fetch_reads_only_needed_blocks(disk, pool):
    col = Column.from_ints("v", np.arange(100_000, dtype=np.int32), int32())
    f = ColumnFile.load(disk, "f", col, CompressionLevel.NONE)
    disk.stats.reset()
    positions = np.array([5, 6, 99_000], dtype=np.int64)
    values = f.fetch(pool, positions)
    assert values.tolist() == [5, 6, 99_000]
    assert disk.stats.pages_read == 2  # first and last block only


def test_colfile_rle_blocks_cover_many_positions(disk, pool):
    # a sorted low-cardinality column packs far more than the plain
    # per-page value count into each page
    col = Column.from_ints(
        "v", np.repeat(np.arange(10, dtype=np.int32), 100_000), int32())
    f = ColumnFile.load(disk, "wide", col, CompressionLevel.MAX)
    plain_per_page = (PAGE_SIZE - 24) // 4
    assert f.num_values / f.num_blocks > plain_per_page * 10


# --------------------------------------------------------------------- #
# Projection
# --------------------------------------------------------------------- #
def test_projection_sorts_and_roundtrips(disk, pool):
    table = _small_table(2000, seed=3)
    proj = Projection.create(disk, table, sort_keys=("v", "k"))
    assert proj.sort_order.keys == ("v", "k")
    data = proj.read_table(pool)
    assert np.all(np.diff(data["v"]) >= 0)
    # same multiset of keys
    assert sorted(data["k"].tolist()) == list(range(2000))


def test_projection_unknown_column(disk):
    proj = Projection.create(disk, _small_table(10), sort_keys=())
    with pytest.raises(Exception):
        proj.column_file("missing")
    assert proj.has_column("k")
    assert proj.sorted_on("k") is None


def test_projection_sizes(disk):
    table = _small_table(2000)
    plain = Projection.create(disk, table, (), CompressionLevel.NONE,
                              name="p_plain")
    comp = Projection.create(disk, table, ("v",), CompressionLevel.MAX,
                             name="p_comp")
    assert comp.compressed_payload_bytes() < plain.compressed_payload_bytes()
    assert plain.size_bytes() >= plain.compressed_payload_bytes()


# --------------------------------------------------------------------- #
# property tests: the disk formats round-trip arbitrary data
# --------------------------------------------------------------------- #
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simio.stats import QueryStats
from repro.simio.disk import SimulatedDisk
from repro.simio.buffer_pool import BufferPool


@given(st.lists(st.integers(min_value=-2**31, max_value=2**31 - 1),
                max_size=2000),
       st.sampled_from(list(CompressionLevel)))
@settings(max_examples=30, deadline=None)
def test_property_colfile_roundtrip(values, level):
    local_disk = SimulatedDisk(QueryStats())
    local_pool = BufferPool(local_disk, 4 * 1024 * 1024)
    col = Column.from_ints("v", np.asarray(values, dtype=np.int32), int32())
    f = ColumnFile.load(local_disk, "c", col, level)
    assert np.array_equal(f.read_all(local_pool), col.data)
    # block starts are consistent with the value count
    assert f.num_values == len(values)
    if values:
        assert f.block_for_position(len(values) - 1) == f.num_blocks - 1


@given(st.lists(st.integers(min_value=-2**31, max_value=2**31 - 1),
                min_size=1, max_size=500),
       st.lists(st.text(alphabet="abcdef", min_size=0, max_size=6),
                min_size=1, max_size=500))
@settings(max_examples=30, deadline=None)
def test_property_heapfile_roundtrip(ints, strings):
    n = min(len(ints), len(strings))
    local_disk = SimulatedDisk(QueryStats())
    local_pool = BufferPool(local_disk, 4 * 1024 * 1024)
    table = Table("t", [
        Column.from_ints("a", np.asarray(ints[:n], dtype=np.int32),
                         int32()),
        Column.from_strings("s", [x or "_" for x in strings[:n]]),
    ])
    heap = HeapFile.load(local_disk, "h", table)
    got = np.concatenate(list(heap.scan_batches(local_pool)))
    assert np.array_equal(got["a"], table.column("a").data)


@given(st.lists(st.integers(min_value=0, max_value=2**31 - 1),
                min_size=2, max_size=2000))
@settings(max_examples=30, deadline=None)
def test_property_colfile_fetch_matches_direct(values):
    local_disk = SimulatedDisk(QueryStats())
    local_pool = BufferPool(local_disk, 4 * 1024 * 1024)
    arr = np.asarray(values, dtype=np.int32)
    col = Column.from_ints("v", arr, int32())
    f = ColumnFile.load(local_disk, "c", col, CompressionLevel.MAX)
    positions = np.unique(np.asarray(
        [0, len(arr) // 2, len(arr) - 1], dtype=np.int64))
    assert f.fetch(local_pool, positions).tolist() == \
        arr[positions].tolist()
