"""Codec unit + property tests: every codec round-trips every input it
claims to support, framed payloads self-describe, and auto-selection
never picks a codec larger than plain."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.storage.encodings import (
    BitPackCodec,
    DeltaCodec,
    DictionaryCodec,
    PlainCodec,
    RleCodec,
    bits_needed,
    choose_codec,
    codec_by_id,
    decode_payload,
    decode_payload_runs,
    encoded_size,
    runs_of,
)
from repro.storage.encodings.bitpack import pack_bits, unpack_bits
from repro.storage.encodings.delta import unzigzag, zigzag

ALL_CODECS = [PlainCodec(), RleCodec(), BitPackCodec(), DeltaCodec(),
              DictionaryCodec()]

SAMPLE_ARRAYS = [
    np.array([], dtype=np.int32),
    np.array([0], dtype=np.int32),
    np.array([2**31 - 1, 0, -2**31], dtype=np.int64),
    np.arange(1000, dtype=np.int32),
    np.repeat(np.arange(7, dtype=np.int32), 13),
    np.array([5] * 4096, dtype=np.int32),
]


@pytest.mark.parametrize("codec", ALL_CODECS, ids=lambda c: c.name)
@pytest.mark.parametrize("array", SAMPLE_ARRAYS,
                         ids=lambda a: f"n{len(a)}_{a.dtype}")
def test_roundtrip(codec, array):
    if not codec.can_encode(array):
        pytest.skip("codec does not apply")
    out = decode_payload(codec.frame(array))
    assert out.dtype == array.dtype
    assert np.array_equal(out, array)


def test_plain_handles_byte_strings():
    arr = np.array([b"abc", b"de", b"f"], dtype="S3")
    out = decode_payload(PlainCodec().frame(arr))
    assert np.array_equal(out, arr)


def test_plain_rejects_floats():
    assert not PlainCodec().can_encode(np.array([1.5]))
    with pytest.raises(EncodingError):
        PlainCodec().encode(np.array([1.5]))


def test_rle_runs_of():
    values, lengths = runs_of(np.array([1, 1, 2, 2, 2, 1]))
    assert values.tolist() == [1, 2, 1]
    assert lengths.tolist() == [2, 3, 1]


def test_rle_runs_of_empty():
    values, lengths = runs_of(np.array([], dtype=np.int32))
    assert len(values) == 0 and len(lengths) == 0


def test_rle_decode_runs_without_expansion():
    arr = np.repeat(np.arange(5, dtype=np.int32), 100)
    runs = decode_payload_runs(RleCodec().frame(arr))
    assert runs is not None
    values, lengths = runs
    assert values.tolist() == [0, 1, 2, 3, 4]
    assert lengths.tolist() == [100] * 5


def test_non_rle_payload_has_no_runs():
    assert decode_payload_runs(PlainCodec().frame(
        np.arange(4, dtype=np.int32))) is None


def test_bitpack_rejects_negatives():
    assert not BitPackCodec().can_encode(np.array([-1], dtype=np.int32))


def test_bits_needed():
    assert bits_needed(0) == 1
    assert bits_needed(1) == 1
    assert bits_needed(2) == 2
    assert bits_needed(255) == 8
    assert bits_needed(256) == 9


def test_bits_needed_negative_raises():
    with pytest.raises(EncodingError):
        bits_needed(-1)


def test_zigzag_roundtrip_extremes():
    values = np.array([0, -1, 1, -2**40, 2**40], dtype=np.int64)
    assert np.array_equal(unzigzag(zigzag(values)), values)


def test_codec_registry_lookup():
    for codec in ALL_CODECS:
        assert codec_by_id(int(codec.codec_id)).name == codec.name


def test_unknown_codec_id_raises():
    with pytest.raises(EncodingError):
        codec_by_id(99)


def test_empty_payload_raises():
    with pytest.raises(EncodingError):
        decode_payload(b"")


def test_choose_codec_never_beats_plain_badly():
    rng = np.random.default_rng(1)
    for arr in (rng.integers(0, 2**30, 5000).astype(np.int32),
                np.sort(rng.integers(0, 100, 5000)).astype(np.int32),
                np.repeat(np.int32(3), 5000)):
        best = choose_codec(arr)
        assert encoded_size(best, arr) <= encoded_size(PlainCodec(), arr)


def test_choose_codec_picks_rle_for_constant():
    assert choose_codec(np.repeat(np.int32(9), 10_000).astype(np.int32)
                        ).name == "rle"


def test_choose_codec_picks_delta_for_sorted_dense():
    arr = np.sort(np.random.default_rng(0).integers(
        0, 2**30, 10_000)).astype(np.int32)
    assert choose_codec(arr).name in ("delta", "rle")


# --------------------------------------------------------------------- #
# property tests
# --------------------------------------------------------------------- #
int32_arrays = st.lists(
    st.integers(min_value=-2**31, max_value=2**31 - 1), max_size=300
).map(lambda xs: np.array(xs, dtype=np.int32))

nonneg_arrays = st.lists(
    st.integers(min_value=0, max_value=2**31 - 1), max_size=300
).map(lambda xs: np.array(xs, dtype=np.int32))


@given(int32_arrays)
@settings(max_examples=60, deadline=None)
def test_property_plain_rle_delta_roundtrip(arr):
    for codec in (PlainCodec(), RleCodec(), DeltaCodec(),
                  DictionaryCodec()):
        out = decode_payload(codec.frame(arr))
        assert np.array_equal(out, arr)
        assert out.dtype == arr.dtype


@given(nonneg_arrays)
@settings(max_examples=60, deadline=None)
def test_property_bitpack_roundtrip(arr):
    out = decode_payload(BitPackCodec().frame(arr))
    assert np.array_equal(out, arr)


@given(nonneg_arrays, st.integers(min_value=1, max_value=33))
@settings(max_examples=40, deadline=None)
def test_property_pack_bits_roundtrip(arr, extra_bits):
    if len(arr):
        bits = max(bits_needed(int(arr.max())), 1)
    else:
        bits = 1
    packed = pack_bits(arr, bits)
    out = unpack_bits(packed, len(arr), bits)
    assert np.array_equal(out.astype(np.int64), arr.astype(np.int64))


@given(int32_arrays)
@settings(max_examples=60, deadline=None)
def test_property_runs_reconstruct(arr):
    values, lengths = runs_of(arr)
    assert np.array_equal(np.repeat(values, lengths), arr)
    if len(values) > 1:
        # adjacent runs always differ
        assert np.all(values[1:] != values[:-1])


@given(int32_arrays)
@settings(max_examples=60, deadline=None)
def test_property_choose_codec_roundtrips(arr):
    codec = choose_codec(arr)
    assert np.array_equal(decode_payload(codec.frame(arr)), arr)
