"""Column / StringDictionary / Table unit tests."""

import numpy as np
import pytest

from repro.errors import SchemaError, TypeMismatchError
from repro.storage.column import Column, StringDictionary
from repro.storage.table import SortOrder, Table
from repro.types import int32, int64, string


# --------------------------------------------------------------------- #
# StringDictionary
# --------------------------------------------------------------------- #
def test_dictionary_is_sorted_and_order_preserving():
    d = StringDictionary(["banana", "apple", "cherry", "apple"])
    assert d.strings == ["apple", "banana", "cherry"]
    assert d.code("apple") < d.code("banana") < d.code("cherry")


def test_dictionary_encode_decode():
    d = StringDictionary(["x", "y"])
    codes = d.encode(["y", "x", "y"])
    assert codes.tolist() == [1, 0, 1]
    assert d.decode(codes) == ["y", "x", "y"]


def test_dictionary_code_or_none():
    d = StringDictionary(["a"])
    assert d.code_or_none("a") == 0
    assert d.code_or_none("zzz") is None


def test_dictionary_range_for_prefix():
    d = StringDictionary(["aa", "ab", "b", "c"])
    assert list(d.range_for_prefix_le("ab", "b")) == [1, 2]


def test_dictionary_equality():
    assert StringDictionary(["a", "b"]) == StringDictionary(["b", "a"])
    assert StringDictionary(["a"]) != StringDictionary(["b"])


# --------------------------------------------------------------------- #
# Column
# --------------------------------------------------------------------- #
def test_int_column_basics():
    c = Column.from_ints("q", [1, 2, 3], int32())
    assert len(c) == 3
    assert c.value_at(1) == 2
    assert c.uncompressed_bytes() == 12
    assert not c.is_string


def test_int_column_overflow_rejected():
    with pytest.raises(TypeMismatchError):
        Column.from_ints("q", [2**40], int32())


def test_string_column_roundtrip():
    c = Column.from_strings("city", ["rome", "oslo", "rome"])
    assert c.is_string
    assert c.value_at(0) == "rome"
    assert c.decoded() == ["rome", "oslo", "rome"]
    assert c.uncompressed_bytes() == 3 * 4  # width 4 = len("rome")


def test_string_column_requires_dictionary():
    with pytest.raises(TypeMismatchError):
        Column("s", string(4), np.array([0], dtype=np.int32))


def test_int_column_rejects_dictionary():
    d = StringDictionary(["a"])
    with pytest.raises(TypeMismatchError):
        Column("n", int32(), np.array([0], dtype=np.int32), d)


def test_column_codes_must_fit_dictionary():
    d = StringDictionary(["a", "b"])
    with pytest.raises(TypeMismatchError):
        Column.from_codes("s", np.array([5], dtype=np.int32), d, 1)


def test_column_take_and_rename():
    c = Column.from_ints("q", [10, 20, 30], int32())
    t = c.take(np.array([2, 0]))
    assert t.data.tolist() == [30, 10]
    assert c.rename("z").name == "z"


def test_column_data_is_readonly():
    c = Column.from_ints("q", [1], int32())
    with pytest.raises(ValueError):
        c.data[0] = 5


def test_encode_literal():
    c = Column.from_strings("s", ["a", "b"])
    assert c.encode_literal("a") == 0
    assert c.encode_literal("missing") is None
    with pytest.raises(TypeMismatchError):
        c.encode_literal(7)
    n = Column.from_ints("n", [1], int64())
    assert n.encode_literal(9) == 9
    with pytest.raises(TypeMismatchError):
        n.encode_literal("x")


# --------------------------------------------------------------------- #
# Table
# --------------------------------------------------------------------- #
def _table():
    return Table("t", [
        Column.from_ints("k", [3, 1, 2], int32()),
        Column.from_strings("s", ["c", "a", "b"]),
    ])


def test_table_basics():
    t = _table()
    assert t.num_rows == 3
    assert t.column_names == ["k", "s"]
    assert t.row(0) == {"k": 3, "s": "c"}
    assert t.uncompressed_bytes() == 3 * 4 + 3 * 1


def test_table_ragged_columns_rejected():
    with pytest.raises(SchemaError):
        Table("t", [
            Column.from_ints("a", [1], int32()),
            Column.from_ints("b", [1, 2], int32()),
        ])


def test_table_duplicate_column_rejected():
    c = Column.from_ints("a", [1], int32())
    with pytest.raises(SchemaError):
        Table("t", [c, c])


def test_table_unknown_column_raises():
    with pytest.raises(SchemaError):
        _table().column("missing")


def test_table_sort_by():
    t = _table().sort_by(["k"])
    assert t.column("k").data.tolist() == [1, 2, 3]
    assert t.column("s").decoded() == ["a", "b", "c"]
    assert t.sort_order.keys == ("k",)
    assert t.verify_sorted()


def test_table_sort_by_compound():
    t = Table("t", [
        Column.from_ints("a", [1, 1, 0, 0], int32()),
        Column.from_ints("b", [2, 1, 5, 4], int32()),
    ]).sort_by(["a", "b"])
    assert t.column("a").data.tolist() == [0, 0, 1, 1]
    assert t.column("b").data.tolist() == [4, 5, 1, 2]
    assert t.verify_sorted()


def test_verify_sorted_detects_violation():
    t = Table("t", [Column.from_ints("a", [2, 1], int32())],
              SortOrder(("a",)))
    assert not t.verify_sorted()


def test_table_project_preserves_sort_prefix():
    t = Table("t", [
        Column.from_ints("a", [0, 1], int32()),
        Column.from_ints("b", [0, 1], int32()),
        Column.from_ints("c", [0, 1], int32()),
    ], SortOrder(("a", "b", "c")))
    p = t.project(["a", "c"])
    assert p.sort_order.keys == ("a",)  # b missing breaks the prefix


def test_table_take():
    t = _table().take(np.array([1]))
    assert t.num_rows == 1
    assert t.row(0) == {"k": 1, "s": "a"}


def test_sort_order_helpers():
    so = SortOrder(("a", "b"))
    assert so.sorted_prefix_of("a")
    assert not so.sorted_prefix_of("b")
    assert so.position("b") == 1
    assert so.position("z") is None
    assert bool(SortOrder(())) is False


def test_table_bad_sort_key_rejected():
    with pytest.raises(SchemaError):
        Table("t", [Column.from_ints("a", [1], int32())],
              SortOrder(("missing",)))
