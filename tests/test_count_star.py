"""Bare ``count(*)`` plans reference no fact columns at all; the row
count must survive anyway (regression: column-free batches and tuple
pipelines used to read as zero rows, and the VP/AI seeds crashed)."""

import pytest

from repro.core.config import CONFIG_LADDER
from repro.errors import PlanError
from repro.reference import execute as reference_execute
from repro.rowstore.designs import DesignKind
from repro.sql import parse_query

BARE = "SELECT count(*) AS n FROM lineorder"
FILTERED = "SELECT count(*) AS n FROM lineorder WHERE quantity < 25"


@pytest.mark.parametrize("sql", [BARE, FILTERED])
def test_rowstore_counts_every_design(system_x, ssb_data, sql):
    query = parse_query(sql, name="adhoc")
    expected = reference_execute(ssb_data.tables, query).rows
    for design in DesignKind:
        if design.value == "MV":
            # the MV design only answers queries a flight view covers;
            # an uncovered ad-hoc query is a typed plan error, not zero
            with pytest.raises(PlanError):
                system_x.execute(query, design)
            continue
        got = system_x.execute(query, design).result.rows
        assert got == expected, design.value


@pytest.mark.parametrize("sql", [BARE, FILTERED])
def test_colstore_counts_every_config(cstore, ssb_data, sql):
    query = parse_query(sql, name="adhoc")
    expected = reference_execute(ssb_data.tables, query).rows
    for config in CONFIG_LADDER:
        got = cstore.execute(query, config).result.rows
        assert got == expected, config.label
